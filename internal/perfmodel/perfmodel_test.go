package perfmodel

import (
	"testing"
	"testing/quick"

	"smartbalance/internal/arch"
	"smartbalance/internal/rng"
	"smartbalance/internal/workload"
)

func computePhase() workload.Phase {
	return workload.Phase{
		Name: "compute", Instructions: 1e7, ILP: 3.6, MemShare: 0.22, BranchShare: 0.07,
		WorkingSetIKB: 5, WorkingSetDKB: 20, BranchEntropy: 0.12, MLP: 2.8,
		TLBPressureI: 0.04, TLBPressureD: 0.08,
	}
}

func memoryPhase() workload.Phase {
	return workload.Phase{
		Name: "memory", Instructions: 1e7, ILP: 1.3, MemShare: 0.42, BranchShare: 0.16,
		WorkingSetIKB: 8, WorkingSetDKB: 2048, BranchEntropy: 0.65, MLP: 1.8,
		TLBPressureI: 0.1, TLBPressureD: 0.7,
	}
}

func TestIPCWithinPhysicalBounds(t *testing.T) {
	for _, ct := range arch.Table2Types() {
		ct := ct
		for _, ph := range []workload.Phase{computePhase(), memoryPhase()} {
			m := Evaluate(&ph, &ct)
			if m.IPC <= 0 || m.IPC > ct.PeakIPC {
				t.Errorf("%s/%s: IPC %.3f outside (0, %.2f]", ct.Name, ph.Name, m.IPC, ct.PeakIPC)
			}
			if m.BusyFrac <= 0 || m.BusyFrac > 1 {
				t.Errorf("%s/%s: BusyFrac %.3f outside (0,1]", ct.Name, ph.Name, m.BusyFrac)
			}
		}
	}
}

func TestBiggerCoresWinOnComputeBoundCode(t *testing.T) {
	ph := computePhase()
	types := arch.Table2Types()
	prev := 0.0
	for i := len(types) - 1; i >= 0; i-- { // Small .. Huge
		m := Evaluate(&ph, &types[i])
		ips := m.IPS(&types[i])
		if ips <= prev {
			t.Fatalf("IPS not increasing with core size at %s: %.3g <= %.3g", types[i].Name, ips, prev)
		}
		prev = ips
	}
	// And the spread should be large (the whole point of heterogeneity).
	huge := Evaluate(&ph, &types[0]).IPS(&types[0])
	small := Evaluate(&ph, &types[3]).IPS(&types[3])
	if huge/small < 4 {
		t.Fatalf("compute-bound Huge/Small IPS ratio %.2f too small", huge/small)
	}
}

func TestMemoryBoundCodeClosesTheGap(t *testing.T) {
	types := arch.Table2Types()
	huge, small := &types[0], &types[3]
	comp := computePhase()
	mem := memoryPhase()
	ratioCompute := Evaluate(&comp, huge).IPS(huge) / Evaluate(&comp, small).IPS(small)
	ratioMemory := Evaluate(&mem, huge).IPS(huge) / Evaluate(&mem, small).IPS(small)
	if ratioMemory >= ratioCompute {
		t.Fatalf("memory-bound code should narrow Huge/Small ratio: compute %.2f, memory %.2f",
			ratioCompute, ratioMemory)
	}
	if ratioMemory > 6 {
		t.Fatalf("memory-bound Huge/Small ratio %.2f still too wide for the memory wall", ratioMemory)
	}
}

func TestCacheMissRateShape(t *testing.T) {
	// Fits in cache: tiny. Spills: grows. Saturates below cap.
	if mr := CacheMissRate(8, 64, 0.3); mr > 0.002 {
		t.Fatalf("fitting working set miss rate %.4f too high", mr)
	}
	small := CacheMissRate(32, 64, 0.3)
	spill := CacheMissRate(128, 64, 0.3)
	flood := CacheMissRate(4096, 64, 0.3)
	if !(small < spill && spill < flood) {
		t.Fatalf("miss rate not monotone in working set: %g %g %g", small, spill, flood)
	}
	if flood > 0.3+l1MissFloor {
		t.Fatalf("miss rate exceeded cap: %g", flood)
	}
	// Continuity at the capacity boundary.
	below := CacheMissRate(63.99, 64, 0.3)
	above := CacheMissRate(64.01, 64, 0.3)
	if above-below > 0.001 {
		t.Fatalf("discontinuity at capacity: %g -> %g", below, above)
	}
	// Degenerate inputs saturate.
	if CacheMissRate(0, 64, 0.3) != 0.3 || CacheMissRate(8, 0, 0.3) != 0.3 {
		t.Fatal("degenerate cache sizes should return cap")
	}
}

func TestLargerCachesMissLess(t *testing.T) {
	ph := memoryPhase() // 2 MB working set
	types := arch.Table2Types()
	hugeMR := Evaluate(&ph, &types[0]).MissRateL1D
	smallMR := Evaluate(&ph, &types[3]).MissRateL1D
	if hugeMR >= smallMR {
		t.Fatalf("64KB cache should miss less than 16KB: %g vs %g", hugeMR, smallMR)
	}
}

func TestMispredictScalesWithEntropyAndCore(t *testing.T) {
	types := arch.Table2Types()
	ph := computePhase()
	ph.BranchEntropy = 1
	hard := Evaluate(&ph, &types[3]).MispredictRate
	ph.BranchEntropy = 0
	easy := Evaluate(&ph, &types[3]).MispredictRate
	if easy != 0 {
		t.Fatalf("zero-entropy branches mispredicted: %g", easy)
	}
	if hard <= 0 || hard > 0.12 {
		t.Fatalf("adversarial mispredict rate %g implausible", hard)
	}
	// Wider core = better predictor.
	ph.BranchEntropy = 0.8
	if Evaluate(&ph, &types[0]).MispredictRate >= Evaluate(&ph, &types[3]).MispredictRate {
		t.Fatal("Huge core should mispredict less than Small")
	}
}

func TestTLBRates(t *testing.T) {
	ph := memoryPhase()
	types := arch.Table2Types()
	m := Evaluate(&ph, &types[3])
	if m.MissRateITLB <= 0 || m.MissRateDTLB <= 0 {
		t.Fatal("TLB pressure produced no misses")
	}
	ph.TLBPressureI, ph.TLBPressureD = 0, 0
	m = Evaluate(&ph, &types[3])
	if m.MissRateITLB != 0 || m.MissRateDTLB != 0 {
		t.Fatal("zero pressure should produce zero TLB misses")
	}
}

func TestILPLimitedByIssueWidth(t *testing.T) {
	types := arch.Table2Types()
	small := &types[3] // single-issue
	lo := computePhase()
	lo.ILP = 1.0
	hi := computePhase()
	hi.ILP = 6.0
	ipcLo := Evaluate(&lo, small).IPC
	ipcHi := Evaluate(&hi, small).IPC
	// On a single-issue core, raising intrinsic ILP beyond 1 buys
	// (almost) nothing.
	if ipcHi/ipcLo > 1.35 {
		t.Fatalf("single-issue core exploited ILP it cannot issue: %.3f vs %.3f", ipcHi, ipcLo)
	}
	// On the 8-wide core it buys a lot.
	huge := &types[0]
	if Evaluate(&hi, huge).IPC/Evaluate(&lo, huge).IPC < 2 {
		t.Fatal("wide core failed to exploit ILP")
	}
}

func TestMemoryWallScalesWithFrequency(t *testing.T) {
	// Same microarchitecture at two frequencies: the faster one loses
	// more IPC to a memory-bound phase.
	fast := arch.BigCore()
	slow := arch.BigCore()
	slow.FreqMHz = 500
	ph := memoryPhase()
	ipcFast := Evaluate(&ph, &fast).IPC
	ipcSlow := Evaluate(&ph, &slow).IPC
	if ipcFast >= ipcSlow {
		t.Fatalf("memory wall missing: IPC %.3f @1.5GHz >= %.3f @0.5GHz", ipcFast, ipcSlow)
	}
}

func TestMLPReducesMemoryStalls(t *testing.T) {
	types := arch.Table2Types()
	big := &types[1]
	ph := memoryPhase()
	ph.MLP = 1
	serial := Evaluate(&ph, big).IPC
	ph.MLP = 3
	overlapped := Evaluate(&ph, big).IPC
	if overlapped <= serial {
		t.Fatal("MLP should increase IPC on memory-bound code")
	}
}

func TestBusyFracHigherOnComputeCode(t *testing.T) {
	types := arch.Table2Types()
	comp, mem := computePhase(), memoryPhase()
	for i := range types {
		bc := Evaluate(&comp, &types[i]).BusyFrac
		bm := Evaluate(&mem, &types[i]).BusyFrac
		if bc <= bm {
			t.Errorf("%s: compute BusyFrac %.3f <= memory %.3f", types[i].Name, bc, bm)
		}
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	ph := memoryPhase()
	ct := arch.BigCore()
	a := Evaluate(&ph, &ct)
	b := Evaluate(&ph, &ct)
	if a != b {
		t.Fatal("Evaluate is not deterministic")
	}
}

func TestEvaluatePropertyBounds(t *testing.T) {
	// For any valid phase and any Table 2 core, all rates must stay in
	// their physical ranges.
	types := arch.Table2Types()
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		ph := workload.Phase{
			Name:          "rand",
			Instructions:  1e6,
			ILP:           0.5 + r.Float64()*5,
			MemShare:      r.Float64() * 0.5,
			BranchShare:   r.Float64() * 0.3,
			WorkingSetIKB: 1 + r.Float64()*100,
			WorkingSetDKB: 1 + r.Float64()*4000,
			BranchEntropy: r.Float64(),
			MLP:           1 + r.Float64()*5,
			TLBPressureI:  r.Float64(),
			TLBPressureD:  r.Float64(),
		}
		if ph.Validate() != nil {
			return true // skip invalid combos (mem+branch > 0.95)
		}
		for i := range types {
			m := Evaluate(&ph, &types[i])
			if m.IPC <= 0 || m.IPC > types[i].PeakIPC+1e-9 {
				return false
			}
			if m.BusyFrac <= 0 || m.BusyFrac > 1 {
				return false
			}
			for _, rate := range []float64{m.MissRateL1I, m.MissRateL1D, m.MispredictRate, m.MissRateITLB, m.MissRateDTLB} {
				if rate < 0 || rate > 0.5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAllBenchmarksHaveDiverseEfficiency(t *testing.T) {
	// Sanity: across the PARSEC-like suite, the best core type (by raw
	// IPS) must not be uniformly the same as by IPS-per-peak-watt,
	// otherwise there is nothing for the balancer to exploit.
	types := arch.Table2Types()
	diverse := false
	for _, name := range workload.Benchmarks() {
		specs, err := workload.Benchmark(name, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		ph := specs[0].Phases[0]
		bestIPS, bestEff := -1, -1
		var maxIPS, maxEff float64
		for i := range types {
			m := Evaluate(&ph, &types[i])
			ips := m.IPS(&types[i])
			eff := ips / types[i].PeakPowerW
			if ips > maxIPS {
				maxIPS, bestIPS = ips, i
			}
			if eff > maxEff {
				maxEff, bestEff = eff, i
			}
		}
		if bestIPS != bestEff {
			diverse = true
		}
	}
	if !diverse {
		t.Fatal("raw-performance and efficiency rankings coincide on every benchmark; heterogeneity signal missing")
	}
}

func BenchmarkEvaluate(b *testing.B) {
	ph := memoryPhase()
	ct := arch.BigCore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(&ph, &ct)
	}
}

func TestL2FiltersMemoryTraffic(t *testing.T) {
	// A working set that spills L1 but fits in L2 must see mostly
	// L2-latency misses: low conditional L2 miss rate and markedly
	// higher IPC than a set that spills both levels.
	ct := arch.BigCore() // 32KB L1D, 512KB L2
	mid := memoryPhase()
	mid.WorkingSetDKB = 128 // > L1, << L2
	big := memoryPhase()
	big.WorkingSetDKB = 8192 // >> L2
	mMid := Evaluate(&mid, &ct)
	mBig := Evaluate(&big, &ct)
	if mMid.MissRateL2 >= mBig.MissRateL2 {
		t.Fatalf("L2 conditional miss rate not increasing with working set: %g vs %g",
			mMid.MissRateL2, mBig.MissRateL2)
	}
	if mMid.MissRateL2 > 0.35 {
		t.Fatalf("L2-resident set still misses L2 at %g", mMid.MissRateL2)
	}
	if mMid.IPC <= mBig.IPC {
		t.Fatalf("L2 residency should raise IPC: %g vs %g", mMid.IPC, mBig.IPC)
	}
	// Rates always within [0,1].
	for _, m := range []Metrics{mMid, mBig} {
		if m.MissRateL2 < 0 || m.MissRateL2 > 1 {
			t.Fatalf("MissRateL2 %g outside [0,1]", m.MissRateL2)
		}
	}
}

func TestLargerL2HelpsMidSizeWorkingSets(t *testing.T) {
	// The Huge core's 1MB L2 vs the Small core's 256KB: for a ~400KB
	// working set the big L2 must convert most memory misses into L2
	// hits, widening the large-core advantage beyond pure issue width.
	types := arch.Table2Types()
	ph := memoryPhase()
	ph.WorkingSetDKB = 400
	huge := Evaluate(&ph, &types[0])
	small := Evaluate(&ph, &types[3])
	if huge.MissRateL2 >= small.MissRateL2 {
		t.Fatalf("1MB L2 should filter more than 256KB: %g vs %g", huge.MissRateL2, small.MissRateL2)
	}
}
