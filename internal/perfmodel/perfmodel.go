// Package perfmodel is the reproduction's substitute for the paper's
// Gem5 cycle-accurate simulation: a first-order interval-analysis CPU
// model that maps a workload phase's intrinsic attributes onto a
// concrete core type (Table 2 parameters) and yields IPC plus the event
// rates the hardware performance counters expose (cache, TLB and branch
// miss rates, busy/stall cycle split).
//
// The model captures the mechanisms that make heterogeneity matter:
//
//   - issue-width and instruction-window limits cap how much ILP a core
//     can extract, so wide cores only pay off on high-ILP code;
//   - L1 capacity misses follow a working-set-vs-cache-size law, so
//     small caches hurt only when the working set outgrows them;
//   - memory stalls cost a number of *cycles* proportional to core
//     frequency, so fast cores are punished hardest by memory-bound
//     code (the memory wall), letting little cores close the gap;
//   - branch mispredictions flush a pipeline whose depth grows with the
//     core's width.
//
// Absolute accuracy against Gem5 is neither possible nor needed; what
// the balancers consume is the *relative* performance-power landscape,
// which these mechanisms reproduce.
package perfmodel

import (
	"math"

	"smartbalance/internal/arch"
	"smartbalance/internal/workload"
)

// Model parameters. These are fixed constants of the substrate (they
// play the role of Gem5's internal latencies), not tunables of
// SmartBalance itself.
const (
	// MemLatencyNs is the DRAM access latency seen by an L2 miss
	// (private L1/L2 with a shared bus to memory, Section 5).
	MemLatencyNs = 80.0
	// L2LatencyCycles is the private L2 hit latency (runs at the core
	// clock, so a fixed cycle count).
	L2LatencyCycles = 12.0
	// L1IMissPenaltyCycles is the front-end stall per instruction-cache
	// miss (filled from the L2).
	L1IMissPenaltyCycles = 14.0
	// TLBPenaltyCycles is the walk cost of a TLB miss.
	TLBPenaltyCycles = 30.0
	// windowILPScale controls how the ROB size limits exploitable ILP:
	// effective ILP = ILP * (1 - exp(-ROB/windowILPScale)).
	windowILPScale = 96.0
	// l1MissFloor is the compulsory/conflict miss floor when the working
	// set fits in cache.
	l1MissFloor = 0.010
	// l1dMissCap and l1iMissCap bound capacity miss rates (per access /
	// per instruction respectively).
	l1dMissCap = 0.30
	l1iMissCap = 0.12
	// L1DMissCap exports the data-cache capacity-miss ceiling for
	// callers inverting the curve (EstimateWorkingSetKB's cap argument).
	L1DMissCap = l1dMissCap
)

// Metrics is the per-(phase, core-type) steady-state behaviour: the
// quantities the paper's HPCs measure, before sensor noise.
type Metrics struct {
	// IPC is committed instructions per cycle.
	IPC float64
	// BusyFrac is the fraction of non-sleep cycles spent dispatching
	// (cyBusy); the remainder are stall cycles (cyIdle).
	BusyFrac float64
	// MissRateL1I is L1 instruction-cache misses per instruction.
	MissRateL1I float64
	// MissRateL1D is L1 data-cache misses per memory access.
	MissRateL1D float64
	// MissRateL2 is private-L2 misses per L1D miss (the conditional
	// miss probability). It is *not* part of the paper's 10-counter
	// sensing set, so the predictor never sees it — it only shapes the
	// stall time (and keeps prediction honestly imperfect).
	MissRateL2 float64
	// MispredictRate is mispredictions per branch.
	MispredictRate float64
	// MissRateITLB is instruction-TLB misses per instruction.
	MissRateITLB float64
	// MissRateDTLB is data-TLB misses per memory access.
	MissRateDTLB float64
}

// IPS returns the throughput in instructions per second on core type ct.
func (m Metrics) IPS(ct *arch.CoreType) float64 {
	return m.IPC * ct.FreqHz()
}

// CacheMissRate models the capacity behaviour of a cache of cacheKB
// kilobytes against a working set of wsKB kilobytes: a small floor while
// the working set fits, rising smoothly toward cap once it spills.
func CacheMissRate(wsKB, cacheKB, cap float64) float64 {
	if wsKB <= 0 || cacheKB <= 0 {
		return cap
	}
	ratio := wsKB / cacheKB
	if ratio <= 1 {
		// Quadratic ramp toward the floor as the set approaches capacity.
		return l1MissFloor * ratio * ratio
	}
	// Asymptotic approach to cap: even far beyond capacity a larger
	// cache still converts some misses to hits.
	return l1MissFloor + cap*(1-1/ratio)
}

// mispredictBase is the per-core-type baseline misprediction rate for a
// fully adversarial (entropy = 1) branch stream. Wider cores carry
// bigger predictors: base falls with log2(issue width).
func mispredictBase(ct *arch.CoreType) float64 {
	return 0.10 - 0.02*math.Log2(float64(ct.IssueWidth))
}

// tlbScale derives relative TLB reach from the L1 size (Table 2 carries
// no explicit TLB entry counts; caches and TLBs scale together in the
// Alpha-derived configs).
func tlbScale(l1KB int) float64 {
	return math.Sqrt(16 / float64(l1KB))
}

// mlpCap is the number of overlapping outstanding misses the core's
// load queue can sustain.
func mlpCap(ct *arch.CoreType) float64 {
	return 1 + float64(ct.LQSize)/8
}

// pipelineDepth approximates the flush cost of a misprediction.
func pipelineDepth(ct *arch.CoreType) float64 {
	return 6 + float64(ct.IssueWidth)
}

// EstimateWorkingSetKB inverts CacheMissRate: given a measured miss
// rate against a cache of cacheKB kilobytes, it recovers the working
// set that would produce it under the capacity law. This is how the
// contention-aware balancer estimates per-thread LLC appetite from the
// sensed L1D miss rate alone — sensing-driven, no ground-truth access.
// Rates at or beyond the cap (saturated) clamp to maxKB.
func EstimateWorkingSetKB(missRate, cacheKB, cap, maxKB float64) float64 {
	if cacheKB <= 0 || missRate <= 0 {
		return 0
	}
	if missRate <= l1MissFloor {
		// Below-capacity branch: miss = floor * ratio^2.
		return cacheKB * math.Sqrt(missRate/l1MissFloor)
	}
	// Spilled branch: miss = floor + cap*(1 - 1/ratio).
	frac := (missRate - l1MissFloor) / cap
	if frac >= 0.999 {
		return maxKB
	}
	ws := cacheKB / (1 - frac)
	if ws > maxKB {
		return maxKB
	}
	return ws
}

// Evaluate computes the steady-state Metrics of executing phase ph on
// core type ct with uncontended memory.
func Evaluate(ph *workload.Phase, ct *arch.CoreType) Metrics {
	return EvaluateShared(ph, ct, 1, 1)
}

// EvaluateContended computes Metrics with the effective memory latency
// scaled by memLatScale >= 1 — the hook the shared-bus contention model
// uses (Section 5's cores share a bus to main memory, so misses from
// other cores inflate everyone's miss latency). Scales below 1 clamp
// to 1.
func EvaluateContended(ph *workload.Phase, ct *arch.CoreType, memLatScale float64) Metrics {
	return EvaluateShared(ph, ct, memLatScale, 1)
}

// EvaluateShared is the full shared-resource evaluation: memLatScale
// inflates the effective memory latency (bus/bandwidth queueing) and
// llcMissScale inflates the conditional L2->memory miss probability
// (co-runner working sets stealing LLC capacity, internal/contention).
// Both factors clamp below at 1; at (1, 1) the arithmetic is
// bit-identical to the uncontended Evaluate — multiplying by exactly
// 1.0 is exact in IEEE 754, which is what keeps contention-disabled
// runs byte-identical.
func EvaluateShared(ph *workload.Phase, ct *arch.CoreType, memLatScale, llcMissScale float64) Metrics {
	if memLatScale < 1 {
		memLatScale = 1
	}
	if llcMissScale < 1 {
		llcMissScale = 1
	}
	var m Metrics

	// Miss rates (counter-visible events), plus the hidden L2 level.
	m.MissRateL1I = CacheMissRate(ph.WorkingSetIKB, float64(ct.L1IKB), l1iMissCap)
	m.MissRateL1D = CacheMissRate(ph.WorkingSetDKB, float64(ct.L1DKB), l1dMissCap)
	// Conditional L2 miss probability: how much of the working set the
	// (much larger) private L2 still cannot hold. The ratio of the
	// absolute capacity curves approximates P(L2 miss | L1 miss).
	if m.MissRateL1D > 0 {
		abs2 := CacheMissRate(ph.WorkingSetDKB, float64(ct.L2KB), l1dMissCap)
		m.MissRateL2 = abs2 * llcMissScale / m.MissRateL1D
		if m.MissRateL2 > 1 {
			m.MissRateL2 = 1
		}
	}
	m.MispredictRate = ph.BranchEntropy * mispredictBase(ct)
	m.MissRateITLB = ph.TLBPressureI * 0.002 * tlbScale(ct.L1IKB)
	m.MissRateDTLB = ph.TLBPressureD * 0.004 * tlbScale(ct.L1DKB)

	// Interval analysis: CPI = base dispatch + stall components.
	// The instruction window limits only the parallelism *beyond*
	// sequential execution: even a tiny ROB sustains 1 inst/cycle of
	// dependent code.
	effILP := ph.ILP
	if effILP > 1 {
		effILP = 1 + (ph.ILP-1)*(1-math.Exp(-float64(ct.ROBSize)/windowILPScale))
	}
	effIssue := math.Min(float64(ct.IssueWidth), effILP)
	if effIssue < 0.1 {
		effIssue = 0.1
	}
	cpiBase := 1 / effIssue

	freqGHz := ct.FreqMHz / 1000
	memLatCycles := MemLatencyNs * memLatScale * freqGHz

	// Branch flushes.
	cpiBranch := ph.BranchShare * m.MispredictRate * pipelineDepth(ct)
	// Data misses, overlapped up to the effective MLP: L1 misses that
	// hit the private L2 pay its fixed latency; L2 misses go to memory.
	effMLP := math.Min(ph.MLP, mlpCap(ct))
	missLat := (1-m.MissRateL2)*L2LatencyCycles + m.MissRateL2*memLatCycles
	cpiMemD := ph.MemShare * m.MissRateL1D * missLat / effMLP
	// Instruction misses stall the front end with little overlap.
	cpiMemI := m.MissRateL1I * L1IMissPenaltyCycles
	// TLB walks.
	cpiTLB := (m.MissRateITLB + ph.MemShare*m.MissRateDTLB) * TLBPenaltyCycles

	cpi := cpiBase + cpiBranch + cpiMemD + cpiMemI + cpiTLB
	ipc := 1 / cpi
	if ipc > ct.PeakIPC {
		// Table 2's peak-throughput anchor caps sustained IPC.
		ipc = ct.PeakIPC
		cpi = 1 / ipc
	}
	m.IPC = ipc
	m.BusyFrac = cpiBase / cpi
	if m.BusyFrac > 1 {
		m.BusyFrac = 1
	}
	return m
}
