package exp

import (
	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/tablefmt"
)

// TableRelatedWork regenerates Table 1: the comparative summary of
// related work. The literature rows are transcribed from the paper; the
// three schemes this repository implements (IKS, GTS, SmartBalance) are
// additionally verified programmatically — e.g. "core types > 2" is
// checked by actually constructing the balancer on a 4-type platform.
func TableRelatedWork(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	tb := tablefmt.New("Table 1: Comparative Summary of Related Work",
		"Reference", "core types >2", "threads>cores", "thread IPC", "thread power",
		"thread util", "core IPC", "core power", "in OS", "in this repo")
	type row struct {
		name    string
		cells   [8]string
		inRepo  string
		hasImpl bool
	}
	rows := []row{
		{"Chen2009", [8]string{"Yes", "No", "No", "No", "No", "Yes", "Yes", "No"}, "no", false},
		{"Annamalai2013", [8]string{"No", "No", "No", "No", "No", "Yes", "Yes", "No"}, "no", false},
		{"Liu2013", [8]string{"Yes", "Yes", "No", "No", "No", "Yes", "Yes", "No"}, "no", false},
		{"Kim2014", [8]string{"No", "Yes", "No", "No", "Yes", "No", "No", "Yes"}, "no", false},
		{"Linaro IKS 2013", [8]string{"No", "Yes", "No", "No", "Yes", "No", "No", "Yes"}, "balancer.IKS", true},
		{"ARM GTS 2013", [8]string{"No", "Yes", "No", "No", "Yes", "No", "No", "Yes"}, "balancer.GTS", true},
		{"SmartBalance", [8]string{"Yes", "Yes", "Yes", "Yes", "Yes", "Yes", "Yes", "Yes"}, "core.SmartBalance", true},
	}
	for _, r := range rows {
		cells := append([]string{r.name}, r.cells[:]...)
		cells = append(cells, r.inRepo)
		tb.AddRow(cells...)
	}

	// Programmatic verification of the structural claims for the
	// implemented schemes.
	quad := arch.QuadHMP()
	bl := arch.OctaBigLittle()
	checks := 0
	// GTS and IKS must reject >2 core types (their "No" in column 1)...
	if _, err := balancer.NewGTS(quad); err != nil {
		checks++
	}
	if _, err := balancer.NewIKS(quad); err != nil {
		checks++
	}
	// ...and accept big.LITTLE.
	if _, err := balancer.NewGTS(bl); err == nil {
		checks++
	}
	if _, err := balancer.NewIKS(bl); err == nil {
		checks++
	}
	// SmartBalance's "Yes" on >2 core types is exercised by every F4
	// run on the 4-type platform; count it verified when the platform
	// itself validates.
	if quad.Validate() == nil && quad.NumTypes() == 4 {
		checks++
	}
	tb.AddNote("structural claims of the implemented rows verified programmatically: %d/5 checks hold", checks)
	return &Result{
		ID:       "T1",
		Title:    "Comparative summary of related work",
		Table:    tb,
		Headline: map[string]float64{"structural-checks": float64(checks)},
		PaperClaim: "SmartBalance is the only scheme with >2 core types, thread:core > 1, " +
			"and joint per-thread/per-core IPC+power awareness in a shipped OS",
	}, nil
}
