package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// AblationBusContention (A9) enables the shared-memory-bus contention
// model (the paper's Section 5 platform connects all cores to memory
// through one bus) at several bus bandwidths and checks that
// SmartBalance's advantage over the vanilla balancer survives
// cross-core interference — the substrate assumption the headline
// figures silently rely on.
func AblationBusContention(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.QuadHMP()
	smart, err := trainedSmartBalanceFactory(arch.Table2Types(), opts.Seed)
	if err != nil {
		return nil, err
	}
	vanilla := func(*arch.Platform) (kernel.Balancer, error) { return balancer.Vanilla{}, nil }

	bandwidths := []float64{0, 8, 2, 0.5} // GB/s; 0 = contention disabled
	if opts.Quick {
		bandwidths = []float64{0, 1}
	}
	tb := tablefmt.New("Ablation A9: shared-bus contention (canneal x4, memory-bound)",
		"bus GB/s", "vanilla IPS/W", "smartbalance IPS/W", "gain")
	var minGain float64 = 1e9
	var freeVanilla float64
	for _, bw := range bandwidths {
		mopts := machine.Options{BusBandwidthGBps: bw}
		run := func(bf balancerFactory) (*kernel.RunStats, error) {
			specs, err := workload.Benchmark("canneal", 4, opts.Seed)
			if err != nil {
				return nil, err
			}
			m, err := machine.NewWithOptions(plat, mopts)
			if err != nil {
				return nil, err
			}
			b, err := bf(plat)
			if err != nil {
				return nil, err
			}
			cfg := kernel.DefaultConfig()
			cfg.Seed = opts.Seed
			k, err := kernel.New(m, b, cfg)
			if err != nil {
				return nil, err
			}
			for i := range specs {
				if _, err := k.Spawn(&specs[i]); err != nil {
					return nil, err
				}
			}
			if err := k.Run(opts.DurationNs); err != nil {
				return nil, err
			}
			return k.Stats(), nil
		}
		van, err := run(vanilla)
		if err != nil {
			return nil, fmt.Errorf("A9 bw=%g vanilla: %w", bw, err)
		}
		sm, err := run(smart)
		if err != nil {
			return nil, fmt.Errorf("A9 bw=%g smart: %w", bw, err)
		}
		if bw == 0 { //sbvet:allow floateq(bw ranges over config literals; 0 is the contention-disabled setting, never computed)
			freeVanilla = van.EnergyEfficiency()
		}
		gain := sm.EnergyEfficiency() / van.EnergyEfficiency()
		if gain < minGain {
			minGain = gain
		}
		label := "off"
		if bw > 0 {
			label = fmt.Sprintf("%.1f", bw)
		}
		tb.AddRow(label, tablefmt.FormatFloat(van.EnergyEfficiency()),
			tablefmt.FormatFloat(sm.EnergyEfficiency()), fmt.Sprintf("%.2fx", gain))
	}
	tb.AddNote("M/M/1-style queueing on aggregate L1-miss traffic; uncontended vanilla baseline %.3g IPS/W", freeVanilla)
	return &Result{
		ID:       "A9",
		Title:    "Shared-bus contention",
		Table:    tb,
		Headline: map[string]float64{"min-gain-under-contention": minGain},
		PaperClaim: "Section 5: 'the cores are connected to the main memory through a " +
			"shared bus' — contention must not erase the balancing gains",
	}, nil
}
