package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/kernel"
	"smartbalance/internal/stats"
	"smartbalance/internal/sweep"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// Figure5 regenerates Fig. 5: normalized energy efficiency of
// SmartBalance against the state-of-the-art ARM GTS policy (and the
// Linaro IKS baseline) on the octa-core big.LITTLE platform. Paper
// headline: GTS is limited by ~20% relative to SmartBalance.
func Figure5(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.OctaBigLittle()
	smart, err := trainedSmartBalanceFactory(arch.BigLittleTypes(), opts.Seed)
	if err != nil {
		return nil, err
	}
	gts := func(p *arch.Platform) (kernel.Balancer, error) { return balancer.NewGTS(p) }
	iks := func(p *arch.Platform) (kernel.Balancer, error) { return balancer.NewIKS(p) }

	workloads := []string{"blackscholes", "bodytrack", "canneal", "swaptions", "x264H-crew", "Mix1", "Mix5", "Mix6"}
	if opts.Quick {
		workloads = []string{"swaptions", "Mix5"}
	}
	threads := 4
	if opts.Quick {
		threads = 2
	}
	isMix := func(name string) bool {
		for _, m := range workload.MixNames() {
			if m == name {
				return true
			}
		}
		return false
	}

	// Each workload's three runs (GTS, IKS, SmartBalance) form one
	// independent cell; cells fan out on the worker pool and aggregate
	// in workload order.
	type f5Cell struct {
		iksNorm, gain float64
	}
	res, err := sweep.Map(opts.Workers, len(workloads), func(i int) (f5Cell, error) {
		name := workloads[i]
		mk := func() ([]workload.ThreadSpec, error) {
			if isMix(name) {
				return workload.Mix(name, threads, opts.Seed)
			}
			return workload.Benchmark(name, threads, opts.Seed)
		}
		// GTS baseline run.
		specs, err := mk()
		if err != nil {
			return f5Cell{}, err
		}
		gtsStats, err := runScenario(plat, gts, specs, opts.DurationNs, opts.Seed)
		if err != nil {
			return f5Cell{}, fmt.Errorf("F5 gts %s: %w", name, err)
		}
		// IKS run.
		specs, err = mk()
		if err != nil {
			return f5Cell{}, err
		}
		iksStats, err := runScenario(plat, iks, specs, opts.DurationNs, opts.Seed)
		if err != nil {
			return f5Cell{}, fmt.Errorf("F5 iks %s: %w", name, err)
		}
		// SmartBalance run.
		specs, err = mk()
		if err != nil {
			return f5Cell{}, err
		}
		smartStats, err := runScenario(plat, smart, specs, opts.DurationNs, opts.Seed)
		if err != nil {
			return f5Cell{}, fmt.Errorf("F5 smart %s: %w", name, err)
		}
		g := gtsStats.EnergyEfficiency()
		if g <= 0 {
			return f5Cell{}, fmt.Errorf("F5 %s: GTS achieved zero efficiency", name)
		}
		return f5Cell{
			iksNorm: iksStats.EnergyEfficiency() / g,
			gain:    smartStats.EnergyEfficiency() / g,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Figure 5: normalized energy efficiency vs ARM GTS (octa-core big.LITTLE)",
		"workload", "GTS (norm)", "IKS (norm)", "SmartBalance (norm)", "gain vs GTS")
	bars := &tablefmt.Bars{Title: "Fig 5: normalized EE vs GTS (bars; GTS = 1.0)", Unit: "", Baseline: 1}
	var gains []float64
	for i, name := range workloads {
		gains = append(gains, res[i].gain)
		tb.AddRow(name, "1.00",
			fmt.Sprintf("%.2f", res[i].iksNorm),
			fmt.Sprintf("%.2f", res[i].gain),
			fmt.Sprintf("%.2fx", res[i].gain))
		bars.Labels = append(bars.Labels, name)
		bars.Values = append(bars.Values, res[i].gain)
	}
	mean, err := stats.GeoMean(gains)
	if err != nil {
		return nil, err
	}
	minG, _ := stats.Min(gains)
	tb.AddNote("geometric-mean gain over GTS %.2fx (paper: ~1.20x)", mean)
	return &Result{
		ID:       "F5",
		Bars:     bars,
		Title:    "Normalized energy efficiency vs ARM GTS on big.LITTLE",
		Table:    tb,
		Headline: map[string]float64{"geomean-gain-vs-gts": mean, "min-gain-vs-gts": minG},
		PaperClaim: "GTS falls short of SmartBalance by as much as ~20% " +
			"(over 20% improvement w.r.t. GTS)",
	}, nil
}
