package exp

import (
	"fmt"
	"strings"

	"smartbalance/internal/arch"
	"smartbalance/internal/core"
	"smartbalance/internal/powermodel"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// TableCoreConfigs regenerates Table 2: the heterogeneous core
// configuration parameters, cross-checked against the calibrated power
// model (the "estimated by Gem5/McPAT" starred rows must be exactly the
// model anchors).
func TableCoreConfigs(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	types := arch.Table2Types()
	tb := tablefmt.New("Table 2: Heterogeneous Core Configuration Parameters",
		"Parameter", types[0].Name, types[1].Name, types[2].Name, types[3].Name)
	row := func(label string, f func(*arch.CoreType) string) {
		cells := []string{label}
		for i := range types {
			cells = append(cells, f(&types[i]))
		}
		tb.AddRow(cells...)
	}
	row("Issue width (x1)", func(c *arch.CoreType) string { return fmt.Sprintf("%d", c.IssueWidth) })
	row("LQ/SQ size (x2)", func(c *arch.CoreType) string { return fmt.Sprintf("%d/%d", c.LQSize, c.SQSize) })
	row("IQ size (x3)", func(c *arch.CoreType) string { return fmt.Sprintf("%d", c.IQSize) })
	row("ROB size (x4)", func(c *arch.CoreType) string { return fmt.Sprintf("%d", c.ROBSize) })
	row("Int/float regs (x5)", func(c *arch.CoreType) string { return fmt.Sprintf("%d", c.IntRegs) })
	row("L1$I size KB (x6)", func(c *arch.CoreType) string { return fmt.Sprintf("%d", c.L1IKB) })
	row("L1$D size KB (x7)", func(c *arch.CoreType) string { return fmt.Sprintf("%d", c.L1DKB) })
	row("Freq. (MHz)", func(c *arch.CoreType) string { return fmt.Sprintf("%.0f", c.FreqMHz) })
	row("Voltage (V)", func(c *arch.CoreType) string { return fmt.Sprintf("%.1f", c.VoltageV) })
	row("Peak throughput (IPC)", func(c *arch.CoreType) string { return fmt.Sprintf("%.2f", c.PeakIPC) })
	row("Peak power (W)", func(c *arch.CoreType) string { return fmt.Sprintf("%.3f", c.PeakPowerW) })
	row("Area (mm2)", func(c *arch.CoreType) string { return fmt.Sprintf("%.2f", c.AreaMM2) })

	// Calibration cross-check: the power model must hit the anchors.
	worst := 0.0
	refPhase := workload.Phase{
		Name: "ref", Instructions: 1e6, ILP: 2, MemShare: 0.30, BranchShare: 0.12,
		WorkingSetIKB: 8, WorkingSetDKB: 64, BranchEntropy: 0.3, MLP: 2,
	}
	for i := range types {
		pm, err := powermodel.NewCoreModel(&types[i])
		if err != nil {
			return nil, err
		}
		got := pm.BusyPower(types[i].PeakIPC, &refPhase)
		rel := abs(got-types[i].PeakPowerW) / types[i].PeakPowerW
		if rel > worst {
			worst = rel
		}
	}
	tb.AddNote("power-model calibration error at the Table 2 anchors: %.2e (relative)", worst)
	tb.AddNote("private L2 per core (not in Table 2; derived as 16x L1D): %d/%d/%d/%d KB",
		types[0].L2KB, types[1].L2KB, types[2].L2KB, types[3].L2KB)
	return &Result{
		ID:         "T2",
		Title:      "Heterogeneous core configuration parameters",
		Table:      tb,
		Headline:   map[string]float64{"calibration-rel-error": worst},
		PaperClaim: "Table 2 values estimated by Gem5+McPAT at 22nm",
	}, nil
}

// TableBenchmarkMixes regenerates Table 3: the PARSEC mixes.
func TableBenchmarkMixes(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	tb := tablefmt.New("Table 3: Benchmarks and their Mixes", "Mix", "Benchmarks", "Threads per benchmark")
	tcs := make([]string, 0, len(opts.ThreadCounts))
	for _, tc := range opts.ThreadCounts {
		tcs = append(tcs, fmt.Sprintf("%d", tc))
	}
	for _, mix := range workload.MixNames() {
		benches, err := workload.MixContents(mix)
		if err != nil {
			return nil, err
		}
		tb.AddRow(mix, strings.Join(benches, " + "), strings.Join(tcs, ","))
	}
	return &Result{
		ID:         "T3",
		Title:      "PARSEC benchmark mixes",
		Table:      tb,
		Headline:   map[string]float64{"mixes": float64(len(workload.MixNames()))},
		PaperClaim: "six x264/bodytrack mixes (Table 3)",
	}, nil
}

// TablePredictorCoefficients regenerates Table 4: the trained predictor
// coefficient matrix Θ, one row per ordered pair of distinct core
// types, one column per feature.
func TablePredictorCoefficients(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	tc := core.DefaultTrainConfig()
	tc.Seed = opts.Seed
	pred, err := core.Train(arch.Table2Types(), tc)
	if err != nil {
		return nil, err
	}
	headers := append([]string{"Predictor IPC"}, core.FeatureNames()...)
	tb := tablefmt.New("Table 4: Predictor coefficient matrix", headers...)
	types := arch.Table2Types()
	var worstMAPE float64
	for s := range types {
		for d := range types {
			if s == d {
				continue
			}
			m := pred.Model(arch.CoreTypeID(s), arch.CoreTypeID(d))
			cells := []string{fmt.Sprintf("%s->%s", types[s].Name, types[d].Name)}
			for _, c := range m.Coef {
				cells = append(cells, fmt.Sprintf("%.3f", c))
			}
			tb.AddRow(cells...)
			if m.MeanAbsPct > worstMAPE {
				worstMAPE = m.MeanAbsPct
			}
		}
	}
	tb.AddNote("training uses relative-error-weighted least squares; worst per-pair training MAPE %.1f%%", worstMAPE)
	return &Result{
		ID:         "T4",
		Title:      "Predictor coefficient matrix",
		Table:      tb,
		Headline:   map[string]float64{"rows": 12, "worst-pair-train-mape-pct": worstMAPE},
		PaperClaim: "12 coefficient rows over 10 features (Table 4)",
	}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
