package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// AblationSensorNoise (A12) probes the premise in the title: the
// balancer is *sensing-driven*, so how much sensor quality does it
// actually need? The power-sensor noise is swept from 0 to 20 % and the
// energy-efficiency gain over vanilla re-measured at each level.
// Section 6.4 worries about "the dependence on additional counters and
// sensors"; this quantifies the dependence on their *quality*.
func AblationSensorNoise(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.QuadHMP()
	smart, err := trainedSmartBalanceFactory(arch.Table2Types(), opts.Seed)
	if err != nil {
		return nil, err
	}
	vanilla := func(*arch.Platform) (kernel.Balancer, error) { return balancer.Vanilla{}, nil }

	sigmas := []float64{0, 0.02, 0.05, 0.10, 0.20}
	if opts.Quick {
		sigmas = []float64{0, 0.10}
	}
	tb := tablefmt.New("Ablation A12: power-sensor noise robustness (Mix5, 4 threads)",
		"sensor sigma", "vanilla IPS/W", "smartbalance IPS/W", "gain")
	var minGain float64 = 1e9
	for _, sigma := range sigmas {
		cfg := kernel.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.Noise = hpc.Noise{PowerSigma: sigma}
		run := func(bf balancerFactory) (*kernel.RunStats, error) {
			specs, err := workload.Mix("Mix5", 4, opts.Seed)
			if err != nil {
				return nil, err
			}
			return runScenarioWithConfig(plat, bf, specs, opts.DurationNs, cfg)
		}
		van, err := run(vanilla)
		if err != nil {
			return nil, fmt.Errorf("A12 sigma=%g vanilla: %w", sigma, err)
		}
		sm, err := run(smart)
		if err != nil {
			return nil, fmt.Errorf("A12 sigma=%g smart: %w", sigma, err)
		}
		gain := sm.EnergyEfficiency() / van.EnergyEfficiency()
		if gain < minGain {
			minGain = gain
		}
		tb.AddRow(fmt.Sprintf("%.0f%%", 100*sigma),
			tablefmt.FormatFloat(van.EnergyEfficiency()),
			tablefmt.FormatFloat(sm.EnergyEfficiency()),
			fmt.Sprintf("%.2fx", gain))
	}
	tb.AddNote("noise applies to the power sensors only; counters are exact in hardware")
	return &Result{
		ID:       "A12",
		Title:    "Power-sensor noise robustness",
		Table:    tb,
		Headline: map[string]float64{"min-gain-under-noise": minGain},
		PaperClaim: "the approach is sensing-driven (title); Sec. 6.4 discusses the " +
			"dependence on sensors — gains must survive realistic sensor error",
	}, nil
}
