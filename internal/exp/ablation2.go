package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/core"
	"smartbalance/internal/kernel"
	"smartbalance/internal/perfmodel"
	"smartbalance/internal/powermodel"
	"smartbalance/internal/regress"
	"smartbalance/internal/rng"
	"smartbalance/internal/stats"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// AblationFeatureSparsity (A6) addresses the Section 6.4 limitation
// discussion — "the dependence on additional counters and sensors for
// fine-grained awareness ... a sparse virtual sensing mechanism
// guaranteeing a minimal number of counters and sensors can be used" —
// by retraining the IPC predictor with groups of counters removed and
// measuring the held-out error increase. It quantifies which of the 10
// counters actually carry the prediction.
func AblationFeatureSparsity(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	types := arch.Table2Types()

	// Feature groups to drop (by column index into the Table 4 vector):
	// FR=0, mr$i=1, mr$d=2, Imsh=3, Ibsh=4, mrb=5, mritlb=6, mrdtlb=7,
	// ipc_src=8, const=9.
	groups := []struct {
		label string
		drop  []int
	}{
		{"full (all 10)", nil},
		{"no TLB counters", []int{6, 7}},
		{"no branch counters", []int{4, 5}},
		{"no cache counters", []int{1, 2}},
		{"no instruction mix", []int{3, 4}},
		{"ipc_src + const only", []int{0, 1, 2, 3, 4, 5, 6, 7}},
	}
	if opts.Quick {
		groups = groups[:3]
	}

	// Profiling corpus and held-out set.
	trainPhases := core.TrainingPhases(80, opts.Seed)
	var held []workload.Phase
	for _, name := range workload.Benchmarks() {
		specs, err := workload.Benchmark(name, 2, opts.Seed*0x9E37+0xC0FFEE)
		if err != nil {
			return nil, err
		}
		for i := range specs {
			held = append(held, specs[i].Phases...)
		}
	}

	pms := make([]*powermodel.CoreModel, len(types))
	for i := range types {
		pm, err := powermodel.NewCoreModel(&types[i])
		if err != nil {
			return nil, err
		}
		pms[i] = pm
	}
	r := rng.New(opts.Seed ^ 0xA6)
	profile := func(phases []workload.Phase, src int, noisy bool) []core.Measurement {
		out := make([]core.Measurement, len(phases))
		sigma := 0.0
		if noisy {
			sigma = 0.02
		}
		for pi := range phases {
			out[pi] = core.ProfileMeasurement(&phases[pi], types, arch.CoreTypeID(src), pms[src], sigma, r)
		}
		return out
	}

	tb := tablefmt.New("Ablation A6: predictor counter sparsity (held-out IPC error)",
		"feature set", "features kept", "mean error %", "vs full")
	var fullErr float64
	for _, g := range groups {
		masked := map[int]bool{}
		for _, d := range g.drop {
			masked[d] = true
		}
		// Fit masked models for every ordered pair, then evaluate on the
		// held-out set.
		var sum float64
		n := 0
		for s := range types {
			trainObs := profile(trainPhases, s, true)
			heldObs := profile(held, s, true)
			for d := range types {
				if s == d {
					continue
				}
				fr := types[d].FreqMHz / types[s].FreqMHz
				rows := make([][]float64, len(trainPhases))
				targets := make([]float64, len(trainPhases))
				for pi := range trainPhases {
					x := core.Features(&trainObs[pi], fr)
					rows[pi] = maskFeatures(x, masked)
					tIPC := exactIPC(&trainPhases[pi], &types[d])
					w := 1.0
					if tIPC > 0.05 {
						w = 1 / tIPC
					}
					for fi := range rows[pi] {
						rows[pi][fi] *= w
					}
					targets[pi] = tIPC * w
				}
				model, err := regress.Fit(rows, targets)
				if err != nil {
					return nil, fmt.Errorf("A6 %s %d->%d: %w", g.label, s, d, err)
				}
				for pi := range held {
					truth := exactIPC(&held[pi], &types[d])
					if truth <= 1e-9 {
						continue
					}
					pred := model.Predict(maskFeatures(core.Features(&heldObs[pi], fr), masked))
					pred = clampIPC(pred, types[d].PeakIPC)
					sum += abs(pred-truth) / truth
					n++
				}
			}
		}
		meanErr := 100 * sum / float64(n)
		if g.drop == nil {
			fullErr = meanErr
		}
		rel := "1.00x"
		if fullErr > 0 {
			rel = fmt.Sprintf("%.2fx", meanErr/fullErr)
		}
		tb.AddRow(g.label, fmt.Sprintf("%d", core.NumFeatures-len(g.drop)),
			fmt.Sprintf("%.2f", meanErr), rel)
	}
	tb.AddNote("masked counters are zeroed in training and inference; Sec. 6.4's sparse-sensing question")
	return &Result{
		ID:         "A6",
		Title:      "Predictor counter sparsity",
		Table:      tb,
		Headline:   map[string]float64{"full-feature-error-pct": fullErr},
		PaperClaim: "Sec. 6.4: 10 counters + power sensors needed; sparse virtual sensing could reduce them",
	}, nil
}

func maskFeatures(x []float64, masked map[int]bool) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if !masked[i] {
			out[i] = v
		}
	}
	return out
}

func exactIPC(ph *workload.Phase, ct *arch.CoreType) float64 {
	return perfmodel.Evaluate(ph, ct).IPC
}

func clampIPC(v, peak float64) float64 {
	if v < 0.01 {
		return 0.01
	}
	if v > peak {
		return peak
	}
	return v
}

// AblationDVFSHeterogeneity (A7) exercises the Section 3 claim that
// frequency-differentiated identical cores form distinct core types:
// SmartBalance on a DVFS-only heterogeneous platform (one
// micro-architecture at three operating points) versus the vanilla
// balancer.
func AblationDVFSHeterogeneity(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	points := []arch.OperatingPoint{
		{FreqMHz: 1500, VoltageV: 0.80},
		{FreqMHz: 1000, VoltageV: 0.70},
		{FreqMHz: 500, VoltageV: 0.60},
	}
	plat, err := arch.DVFSPlatform(arch.BigCore(), points, 2, powermodel.LeakageFraction)
	if err != nil {
		return nil, err
	}
	smart, err := trainedSmartBalanceFactory(plat.Types, opts.Seed)
	if err != nil {
		return nil, err
	}
	vanilla := func(*arch.Platform) (kernel.Balancer, error) { return balancer.Vanilla{}, nil }

	workloads := []string{"canneal", "swaptions", "Mix5"}
	if opts.Quick {
		workloads = []string{"Mix5"}
	}
	tb := tablefmt.New("Ablation A7: DVFS-only heterogeneity (Big core @ 1500/1000/500 MHz)",
		"workload", "threads", "vanilla IPS/W", "smartbalance IPS/W", "gain")
	var gains []float64
	for _, name := range workloads {
		for _, tc := range opts.ThreadCounts {
			name, tc := name, tc
			mk := func() ([]workload.ThreadSpec, error) { return mkWorkload(name, tc, opts.Seed) }
			gain, baseEE, testEE, err := eeGain(plat, vanilla, smart, mk, opts.DurationNs, opts.Seed)
			if err != nil {
				return nil, fmt.Errorf("A7 %s/%d: %w", name, tc, err)
			}
			gains = append(gains, gain)
			tb.AddRow(name, fmt.Sprintf("%d", tc),
				tablefmt.FormatFloat(baseEE), tablefmt.FormatFloat(testEE),
				fmt.Sprintf("%.2fx", gain))
		}
	}
	mean, err := stats.GeoMean(gains)
	if err != nil {
		return nil, err
	}
	tb.AddNote("identical micro-architecture, three operating points treated as three core types (Sec. 3)")
	return &Result{
		ID:       "A7",
		Title:    "DVFS-only heterogeneity",
		Table:    tb,
		Headline: map[string]float64{"geomean-gain": mean},
		PaperClaim: "cores identical in micro-architecture but at different nominal frequencies " +
			"can be considered distinct core types (Sec. 3)",
	}, nil
}
