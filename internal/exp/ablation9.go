package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/contention"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// A14 workload vocabulary: a cache-sensitive victim pool plus the two
// antagonist profiles of the synth grammar (ant=1 streaming, ant=2
// cache-resident). Victims reuse a working set that fits a shared LLC
// slice comfortably when undisturbed; the antagonists are exactly the
// co-runners that steal it.
const (
	a14Victim    = "synth:phases=1,ins=80,ilp=3,mem=0.3,wsd=384"
	a14Streaming = "synth:phases=1,ins=120,ilp=2,mem=0.4,wsd=2048,ant=1"
	a14CacheRes  = "synth:phases=1,ins=120,ilp=2,mem=0.4,wsd=2048,ant=2"
	a14VictimsN  = 2
	a14PerAntN   = 1
	// a14DurMult stretches the run past the default scenario span so the
	// aware controller's convergence transient (a handful of epochs) is
	// amortised against its steady-state hold; the blind twin churns for
	// the whole run regardless.
	a14DurMult = 3
)

// a14Workload materialises the antagonist mix (victims plus both
// aggressor flavours) or, with antagonists=false, the victim pool alone.
func a14Workload(antagonists bool, seed uint64) ([]workload.ThreadSpec, error) {
	specs, err := workload.Synth(a14Victim, a14VictimsN, seed)
	if err != nil {
		return nil, err
	}
	if !antagonists {
		return specs, nil
	}
	for _, ant := range []string{a14Streaming, a14CacheRes} {
		more, err := workload.Synth(ant, a14PerAntN, seed)
		if err != nil {
			return nil, err
		}
		specs = append(specs, more...)
	}
	return specs, nil
}

// runScenarioContended is runScenarioWithConfig on a machine with
// explicit options; aware additionally couples the balancer to the
// machine's contention model (the SetContention half of the A14 split —
// blind arms run on the same contended machine but optimise without the
// interference term).
func runScenarioContended(plat *arch.Platform, bf balancerFactory, specs []workload.ThreadSpec,
	durNs int64, cfg kernel.Config, mopts machine.Options, aware bool) (*kernel.RunStats, error) {
	m, err := machine.NewWithOptions(plat, mopts)
	if err != nil {
		return nil, err
	}
	b, err := bf(plat)
	if err != nil {
		return nil, err
	}
	if aware {
		if sink, ok := b.(interface {
			SetContention(*contention.Model)
		}); ok {
			sink.SetContention(m.Contention())
		}
	}
	k, err := kernel.New(m, b, cfg)
	if err != nil {
		return nil, err
	}
	for i := range specs {
		if _, err := k.Spawn(&specs[i]); err != nil {
			return nil, err
		}
	}
	if err := k.Run(durNs); err != nil {
		return nil, err
	}
	if err := k.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("exp: post-run invariant violation: %w", err)
	}
	return k.Stats(), nil
}

// AblationContention (A14) isolates the value of contention-aware
// placement. The paper's model treats cores as private-cache islands;
// internal/contention adds the cluster LLC and memory-bandwidth
// interference real MPSoCs exhibit. The ablation runs the
// dual-little-cluster big.LITTLE part (HexaDualCluster — the little
// type spans two LLC domains, so a type-indexed predictor cannot tell
// the placements apart) through three regimes — contention model off,
// model on with victims only, and model on with cache/bandwidth
// antagonists mixed in — and races the contention-aware controller
// (objective carries the interference term) against its blind twin
// (same controller, term withheld). The contract
// scripts/contention_check.sh gates: aware == blind bit-for-bit with
// the model off, aware ~= blind on non-contended mixes, and aware
// strictly ahead on the antagonist mix, where placement decides which
// threads get mauled.
func AblationContention(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.HexaDualCluster()
	smart, err := trainedSmartBalanceFactory(arch.BigLittleTypes(), opts.Seed)
	if err != nil {
		return nil, err
	}
	vanilla := func(*arch.Platform) (kernel.Balancer, error) { return balancer.Vanilla{}, nil }
	gts := func(p *arch.Platform) (kernel.Balancer, error) { return balancer.NewGTS(p) }

	rows := []struct {
		label       string
		spec        contention.Spec
		antagonists bool
	}{
		{"model off, antagonists", contention.Spec{}, true},
		{"model on, victims only", contention.Spec{Enabled: true}, false},
		{"model on, antagonists", contention.Spec{Enabled: true}, true},
	}
	if opts.Quick {
		rows = []struct {
			label       string
			spec        contention.Spec
			antagonists bool
		}{rows[0], rows[2]}
	}

	run := func(bf balancerFactory, row int, aware bool) (*kernel.RunStats, error) {
		specs, err := a14Workload(rows[row].antagonists, opts.Seed)
		if err != nil {
			return nil, err
		}
		cfg := kernel.DefaultConfig()
		cfg.Seed = opts.Seed
		return runScenarioContended(plat, bf, specs, a14DurMult*opts.DurationNs, cfg,
			machine.Options{Contention: rows[row].spec}, aware)
	}

	tb := tablefmt.New("Ablation A14: contention-aware placement (big.LITTLE, victims + antagonists)",
		"regime", "vanilla IPS/W", "gts IPS/W", "blind IPS/W", "aware IPS/W", "aware/blind")
	headline := map[string]float64{}
	for i, row := range rows {
		van, err := run(vanilla, i, false)
		if err != nil {
			return nil, fmt.Errorf("A14 %s vanilla: %w", row.label, err)
		}
		gt, err := run(gts, i, false)
		if err != nil {
			return nil, fmt.Errorf("A14 %s gts: %w", row.label, err)
		}
		blind, err := run(smart, i, false)
		if err != nil {
			return nil, fmt.Errorf("A14 %s blind: %w", row.label, err)
		}
		aware, err := run(smart, i, true)
		if err != nil {
			return nil, fmt.Errorf("A14 %s aware: %w", row.label, err)
		}
		ratio := aware.EnergyEfficiency() / blind.EnergyEfficiency()
		switch row.label {
		case "model off, antagonists":
			headline["aware-over-blind-model-off"] = ratio
		case "model on, victims only":
			headline["aware-over-blind-clean"] = ratio
		case "model on, antagonists":
			headline["aware-over-blind-antagonist"] = ratio
			headline["aware-over-vanilla-antagonist"] = aware.EnergyEfficiency() / van.EnergyEfficiency()
		}
		tb.AddRow(row.label,
			tablefmt.FormatFloat(van.EnergyEfficiency()),
			tablefmt.FormatFloat(gt.EnergyEfficiency()),
			tablefmt.FormatFloat(blind.EnergyEfficiency()),
			tablefmt.FormatFloat(aware.EnergyEfficiency()),
			fmt.Sprintf("%.3fx", ratio))
	}
	tb.AddNote("blind and aware are the same trained controller; aware additionally couples SetContention to the machine's model")
	tb.AddNote("with the model off the interference term is absent from machine and objective alike: aware == blind bit-for-bit")
	tb.AddNote("antagonists: ant=1 streaming (bandwidth) and ant=2 cache-resident (LLC occupancy) synth aggressors")
	return &Result{
		ID:       "A14",
		Title:    "LLC/memory-bandwidth contention and contention-aware placement",
		Table:    tb,
		Headline: headline,
		PaperClaim: "not in the paper — the model assumes private caches end at L2 and cores " +
			"meet only at the memory bus; A14 adds cluster-LLC and bandwidth interference " +
			"and shows sensing-driven placement can account for it",
	}, nil
}
