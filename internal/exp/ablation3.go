package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/core"
	"smartbalance/internal/kernel"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/thermal"
	"smartbalance/internal/workload"
)

// AblationThermal (A8) evaluates the thermal-aware extension: wrapping
// SmartBalance with RC-model temperature feedback that derates hot
// cores' objective weights. It sweeps the derating threshold and
// reports the peak die temperature versus the energy-efficiency cost —
// the Eq. (11) weight knob applied to the Sec. 6.4 thermal outlook.
func AblationThermal(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.QuadHMP()
	tc := core.DefaultTrainConfig()
	tc.Seed = opts.Seed
	pred, err := core.Train(arch.Table2Types(), tc)
	if err != nil {
		return nil, err
	}
	mkInner := func() (*core.SmartBalance, error) {
		cfg := core.DefaultConfig()
		cfg.Anneal.Seed = opts.Seed
		return core.New(pred, cfg)
	}

	type variant struct {
		label        string
		derateAboveC float64 // <= 0 means no thermal wrapper
	}
	variants := []variant{
		{"plain smartbalance", 0},
		{"derate above 58C", 58},
		{"derate above 54C", 54},
		{"derate above 50C", 50},
	}
	if opts.Quick {
		variants = variants[:2]
	}

	tb := tablefmt.New("Ablation A8: thermal-aware weight derating (swaptions x4)",
		"policy", "IPS/W", "peak temp (C)", "EE vs plain")
	var plainEE, worstTempDrop float64
	var coolest float64 = 1e9
	var plainTemp float64
	for _, v := range variants {
		inner, err := mkInner()
		if err != nil {
			return nil, err
		}
		params, err := thermal.FromPlatform(plat)
		if err != nil {
			return nil, err
		}
		tracker, err := thermal.NewTracker(params)
		if err != nil {
			return nil, err
		}
		var bal kernel.Balancer = inner
		if v.derateAboveC > 0 {
			aw, err := thermal.NewAware(inner, tracker)
			if err != nil {
				return nil, err
			}
			aw.DerateAboveC = v.derateAboveC
			aw.CriticalC = v.derateAboveC + 10
			bal = aw
		}
		specs, err := workload.Benchmark("swaptions", 4, opts.Seed)
		if err != nil {
			return nil, err
		}
		st, err := runScenarioWithConfig(plat, func(*arch.Platform) (kernel.Balancer, error) { return bal, nil },
			specs, opts.DurationNs, kernel.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("A8 %s: %w", v.label, err)
		}
		ee := st.EnergyEfficiency()
		var peak float64
		if v.derateAboveC > 0 {
			peak = tracker.MaxSeen()
		} else {
			// Estimate the plain run's peak with the same RC model fed by
			// the run's average per-core powers.
			power := make([]float64, plat.NumCores())
			for j := range st.Cores {
				power[j] = st.Cores[j].EnergyJ / (float64(st.SpanNs) * 1e-9)
			}
			for i := 0; i < 400; i++ {
				if err := tracker.Advance(10e6, power); err != nil {
					return nil, err
				}
			}
			peak = tracker.MaxSeen()
			plainEE = ee
			plainTemp = peak
		}
		rel := 1.0
		if plainEE > 0 {
			rel = ee / plainEE
		}
		if peak < coolest {
			coolest = peak
		}
		if drop := plainTemp - peak; drop > worstTempDrop {
			worstTempDrop = drop
		}
		tb.AddRow(v.label, tablefmt.FormatFloat(ee), fmt.Sprintf("%.1f", peak), fmt.Sprintf("%.3f", rel))
	}
	tb.AddNote("tighter thresholds trade energy efficiency for a cooler die via the Eq.(11) weights")
	return &Result{
		ID:       "A8",
		Title:    "Thermal-aware weight derating",
		Table:    tb,
		Headline: map[string]float64{"plain-peak-c": plainTemp, "coolest-peak-c": coolest},
		PaperClaim: "weights ω_j can be tuned to give preference to certain cores (Sec. 4.3); " +
			"thermal tracking is the Sec. 6.4 outlook",
	}, nil
}
