//go:build !race

package exp

// raceEnabled reports whether the race detector is instrumenting this
// test binary (see race_on_test.go). Host-timing assertions widen
// their budgets under instrumentation.
const raceEnabled = false
