package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/kernel"
	"smartbalance/internal/stats"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// AblationFairness (A11) asks the question the energy-efficiency
// objective invites: does SmartBalance starve some threads to feed the
// efficient cores? It measures Jain's fairness index over per-thread
// retired instructions within each benchmark of a mix, under vanilla
// and under SmartBalance. (Within a benchmark the worker threads are
// near-identical, so instruction counts should be near-equal — index
// close to 1 — when the balancer is fair.)
func AblationFairness(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.QuadHMP()
	smart, err := trainedSmartBalanceFactory(arch.Table2Types(), opts.Seed)
	if err != nil {
		return nil, err
	}
	vanilla := func(*arch.Platform) (kernel.Balancer, error) { return balancer.Vanilla{}, nil }

	mixes := []string{"Mix1", "Mix5", "Mix6"}
	if opts.Quick {
		mixes = []string{"Mix5"}
	}
	threads := 4

	tb := tablefmt.New("Ablation A11: intra-benchmark fairness (Jain's index over thread progress)",
		"mix", "benchmark", "vanilla fairness", "smartbalance fairness")
	var worstSmart float64 = 1
	for _, mix := range mixes {
		fairnessOf := func(bf balancerFactory) (map[string]float64, error) {
			specs, err := workload.Mix(mix, threads, opts.Seed)
			if err != nil {
				return nil, err
			}
			st, err := runScenario(plat, bf, specs, opts.DurationNs, opts.Seed)
			if err != nil {
				return nil, err
			}
			perBench := map[string][]float64{}
			for _, ts := range st.Tasks {
				perBench[ts.Benchmark] = append(perBench[ts.Benchmark], float64(ts.Instr))
			}
			out := map[string]float64{}
			for b, xs := range perBench {
				j, err := stats.JainFairness(xs)
				if err != nil {
					return nil, err
				}
				out[b] = j
			}
			return out, nil
		}
		van, err := fairnessOf(vanilla)
		if err != nil {
			return nil, fmt.Errorf("A11 %s vanilla: %w", mix, err)
		}
		sm, err := fairnessOf(smart)
		if err != nil {
			return nil, fmt.Errorf("A11 %s smart: %w", mix, err)
		}
		benches, err := workload.MixContents(mix)
		if err != nil {
			return nil, err
		}
		for _, b := range benches {
			if sm[b] < worstSmart {
				worstSmart = sm[b]
			}
			tb.AddRow(mix, b, fmt.Sprintf("%.3f", van[b]), fmt.Sprintf("%.3f", sm[b]))
		}
	}
	tb.AddNote("index 1.0 = perfectly equal progress among a benchmark's workers; 1/n = one worker hoards the machine")
	return &Result{
		ID:       "A11",
		Title:    "Intra-benchmark fairness",
		Table:    tb,
		Headline: map[string]float64{"worst-smart-fairness": worstSmart},
		PaperClaim: "implicit: CFS keeps per-core fairness, and the balancer must not " +
			"starve threads to maximise Eq. (10)",
	}, nil
}
