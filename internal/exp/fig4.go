package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/kernel"
	"smartbalance/internal/stats"
	"smartbalance/internal/sweep"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// eeCell is one (workload, thread-count) cell of a Fig. 4-style gain
// sweep, computed on the sweep engine's worker pool.
type eeCell struct {
	gain, baseEE, testEE float64
}

// Figure4a regenerates Fig. 4(a): SmartBalance energy-efficiency gain
// over the vanilla Linux balancer on the 4-type HMP for the nine
// interactive microbenchmark configurations at each thread count.
// Paper headline: 50.02% average improvement.
func Figure4a(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.QuadHMP()
	smart, err := trainedSmartBalanceFactory(arch.Table2Types(), opts.Seed)
	if err != nil {
		return nil, err
	}
	vanilla := func(*arch.Platform) (kernel.Balancer, error) { return balancer.Vanilla{}, nil }

	cfgs := workload.IMBConfigs()
	if opts.Quick {
		cfgs = cfgs[:3]
	}
	// Expand the (config, thread-count) cells in canonical order, fan
	// the independent simulations out on the worker pool, then build
	// the table serially in the same order — byte-identical output for
	// any worker count.
	type f4aCell struct {
		tl, il workload.Level
		name   string
		tc     int
	}
	var cells []f4aCell
	for _, cfg := range cfgs {
		for _, tc := range opts.ThreadCounts {
			cells = append(cells, f4aCell{tl: cfg[0], il: cfg[1], name: workload.IMBName(cfg[0], cfg[1]), tc: tc})
		}
	}
	res, err := sweep.Map(opts.Workers, len(cells), func(i int) (eeCell, error) {
		c := cells[i]
		mk := func() ([]workload.ThreadSpec, error) {
			return workload.IMB(c.tl, c.il, c.tc, opts.Seed)
		}
		gain, baseEE, testEE, err := eeGain(plat, vanilla, smart, mk, opts.DurationNs, opts.Seed)
		if err != nil {
			return eeCell{}, fmt.Errorf("F4a %s/%d: %w", c.name, c.tc, err)
		}
		return eeCell{gain: gain, baseEE: baseEE, testEE: testEE}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Figure 4(a): energy-efficiency gain vs vanilla Linux (IMB)",
		"IMB config", "threads", "vanilla IPS/W", "smartbalance IPS/W", "gain")
	bars := &tablefmt.Bars{Title: "Fig 4(a): EE gain over vanilla (bars)", Unit: "x", Baseline: 1}
	var gains []float64
	for i, c := range cells {
		gains = append(gains, res[i].gain)
		tb.AddRow(c.name, fmt.Sprintf("%d", c.tc),
			tablefmt.FormatFloat(res[i].baseEE), tablefmt.FormatFloat(res[i].testEE),
			fmt.Sprintf("%.2fx", res[i].gain))
		bars.Labels = append(bars.Labels, fmt.Sprintf("%s/%d", c.name, c.tc))
		bars.Values = append(bars.Values, res[i].gain)
	}
	mean, err := stats.GeoMean(gains)
	if err != nil {
		return nil, err
	}
	minG, _ := stats.Min(gains)
	tb.AddNote("geometric-mean gain %.2fx (paper: ~1.50x average); minimum %.2fx", mean, minG)
	return &Result{
		ID:       "F4a",
		Bars:     bars,
		Title:    "Energy-efficiency gain vs vanilla Linux, interactive microbenchmarks",
		Table:    tb,
		Headline: map[string]float64{"geomean-gain": mean, "min-gain": minG},
		PaperClaim: "SmartBalance performs 50.02% better than vanilla on average " +
			"with the interactive benchmarks",
	}, nil
}

// figure4bWorkloads returns the Fig. 4(b) workload list: PARSEC
// benchmarks plus the Table 3 mixes.
func figure4bWorkloads(quick bool) []string {
	benches := []string{
		"blackscholes", "bodytrack", "canneal", "streamcluster", "swaptions",
		"x264H-crew", "x264L-bow",
	}
	if quick {
		return []string{"swaptions", "canneal", "Mix1"}
	}
	return append(benches, workload.MixNames()...)
}

// Figure4b regenerates Fig. 4(b): SmartBalance vs vanilla on PARSEC
// benchmarks and their mixes. Paper headline: 52% average improvement,
// over 50% across all benchmarks.
func Figure4b(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.QuadHMP()
	smart, err := trainedSmartBalanceFactory(arch.Table2Types(), opts.Seed)
	if err != nil {
		return nil, err
	}
	vanilla := func(*arch.Platform) (kernel.Balancer, error) { return balancer.Vanilla{}, nil }

	isMix := func(name string) bool {
		for _, m := range workload.MixNames() {
			if m == name {
				return true
			}
		}
		return false
	}
	// Same fan-out shape as Figure4a: canonical cell expansion, pooled
	// simulation, in-order aggregation.
	type f4bCell struct {
		name string
		tc   int
	}
	var cells []f4bCell
	for _, name := range figure4bWorkloads(opts.Quick) {
		for _, tc := range opts.ThreadCounts {
			cells = append(cells, f4bCell{name: name, tc: tc})
		}
	}
	res, err := sweep.Map(opts.Workers, len(cells), func(i int) (eeCell, error) {
		c := cells[i]
		mk := func() ([]workload.ThreadSpec, error) {
			if isMix(c.name) {
				return workload.Mix(c.name, c.tc, opts.Seed)
			}
			return workload.Benchmark(c.name, c.tc, opts.Seed)
		}
		gain, baseEE, testEE, err := eeGain(plat, vanilla, smart, mk, opts.DurationNs, opts.Seed)
		if err != nil {
			return eeCell{}, fmt.Errorf("F4b %s/%d: %w", c.name, c.tc, err)
		}
		return eeCell{gain: gain, baseEE: baseEE, testEE: testEE}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Figure 4(b): energy-efficiency gain vs vanilla Linux (PARSEC + mixes)",
		"workload", "threads", "vanilla IPS/W", "smartbalance IPS/W", "gain")
	bars := &tablefmt.Bars{Title: "Fig 4(b): EE gain over vanilla (bars)", Unit: "x", Baseline: 1}
	var gains []float64
	for i, c := range cells {
		gains = append(gains, res[i].gain)
		tb.AddRow(c.name, fmt.Sprintf("%d", c.tc),
			tablefmt.FormatFloat(res[i].baseEE), tablefmt.FormatFloat(res[i].testEE),
			fmt.Sprintf("%.2fx", res[i].gain))
		bars.Labels = append(bars.Labels, fmt.Sprintf("%s/%d", c.name, c.tc))
		bars.Values = append(bars.Values, res[i].gain)
	}
	mean, err := stats.GeoMean(gains)
	if err != nil {
		return nil, err
	}
	minG, _ := stats.Min(gains)
	tb.AddNote("geometric-mean gain %.2fx (paper: ~1.52x average); minimum %.2fx", mean, minG)
	return &Result{
		ID:       "F4b",
		Bars:     bars,
		Title:    "Energy-efficiency gain vs vanilla Linux, PARSEC and mixes",
		Table:    tb,
		Headline: map[string]float64{"geomean-gain": mean, "min-gain": minG},
		PaperClaim: "52% better than vanilla with PARSEC benchmarks and mixes; " +
			"over 50% across all benchmarks",
	}, nil
}
