package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/kernel"
	"smartbalance/internal/stats"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// Figure4a regenerates Fig. 4(a): SmartBalance energy-efficiency gain
// over the vanilla Linux balancer on the 4-type HMP for the nine
// interactive microbenchmark configurations at each thread count.
// Paper headline: 50.02% average improvement.
func Figure4a(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.QuadHMP()
	smart, err := trainedSmartBalanceFactory(arch.Table2Types(), opts.Seed)
	if err != nil {
		return nil, err
	}
	vanilla := func(*arch.Platform) (kernel.Balancer, error) { return balancer.Vanilla{}, nil }

	cfgs := workload.IMBConfigs()
	if opts.Quick {
		cfgs = cfgs[:3]
	}
	tb := tablefmt.New("Figure 4(a): energy-efficiency gain vs vanilla Linux (IMB)",
		"IMB config", "threads", "vanilla IPS/W", "smartbalance IPS/W", "gain")
	bars := &tablefmt.Bars{Title: "Fig 4(a): EE gain over vanilla (bars)", Unit: "x", Baseline: 1}
	var gains []float64
	for _, cfg := range cfgs {
		tl, il := cfg[0], cfg[1]
		name := workload.IMBName(tl, il)
		for _, tc := range opts.ThreadCounts {
			tc := tc
			mk := func() ([]workload.ThreadSpec, error) {
				return workload.IMB(tl, il, tc, opts.Seed)
			}
			gain, baseEE, testEE, err := eeGain(plat, vanilla, smart, mk, opts.DurationNs, opts.Seed)
			if err != nil {
				return nil, fmt.Errorf("F4a %s/%d: %w", name, tc, err)
			}
			gains = append(gains, gain)
			tb.AddRow(name, fmt.Sprintf("%d", tc),
				tablefmt.FormatFloat(baseEE), tablefmt.FormatFloat(testEE),
				fmt.Sprintf("%.2fx", gain))
			bars.Labels = append(bars.Labels, fmt.Sprintf("%s/%d", name, tc))
			bars.Values = append(bars.Values, gain)
		}
	}
	mean, err := stats.GeoMean(gains)
	if err != nil {
		return nil, err
	}
	minG, _ := stats.Min(gains)
	tb.AddNote("geometric-mean gain %.2fx (paper: ~1.50x average); minimum %.2fx", mean, minG)
	return &Result{
		ID:       "F4a",
		Bars:     bars,
		Title:    "Energy-efficiency gain vs vanilla Linux, interactive microbenchmarks",
		Table:    tb,
		Headline: map[string]float64{"geomean-gain": mean, "min-gain": minG},
		PaperClaim: "SmartBalance performs 50.02% better than vanilla on average " +
			"with the interactive benchmarks",
	}, nil
}

// figure4bWorkloads returns the Fig. 4(b) workload list: PARSEC
// benchmarks plus the Table 3 mixes.
func figure4bWorkloads(quick bool) []string {
	benches := []string{
		"blackscholes", "bodytrack", "canneal", "streamcluster", "swaptions",
		"x264H-crew", "x264L-bow",
	}
	if quick {
		return []string{"swaptions", "canneal", "Mix1"}
	}
	return append(benches, workload.MixNames()...)
}

// Figure4b regenerates Fig. 4(b): SmartBalance vs vanilla on PARSEC
// benchmarks and their mixes. Paper headline: 52% average improvement,
// over 50% across all benchmarks.
func Figure4b(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.QuadHMP()
	smart, err := trainedSmartBalanceFactory(arch.Table2Types(), opts.Seed)
	if err != nil {
		return nil, err
	}
	vanilla := func(*arch.Platform) (kernel.Balancer, error) { return balancer.Vanilla{}, nil }

	isMix := func(name string) bool {
		for _, m := range workload.MixNames() {
			if m == name {
				return true
			}
		}
		return false
	}
	tb := tablefmt.New("Figure 4(b): energy-efficiency gain vs vanilla Linux (PARSEC + mixes)",
		"workload", "threads", "vanilla IPS/W", "smartbalance IPS/W", "gain")
	bars := &tablefmt.Bars{Title: "Fig 4(b): EE gain over vanilla (bars)", Unit: "x", Baseline: 1}
	var gains []float64
	for _, name := range figure4bWorkloads(opts.Quick) {
		for _, tc := range opts.ThreadCounts {
			name, tc := name, tc
			mk := func() ([]workload.ThreadSpec, error) {
				if isMix(name) {
					return workload.Mix(name, tc, opts.Seed)
				}
				return workload.Benchmark(name, tc, opts.Seed)
			}
			gain, baseEE, testEE, err := eeGain(plat, vanilla, smart, mk, opts.DurationNs, opts.Seed)
			if err != nil {
				return nil, fmt.Errorf("F4b %s/%d: %w", name, tc, err)
			}
			gains = append(gains, gain)
			tb.AddRow(name, fmt.Sprintf("%d", tc),
				tablefmt.FormatFloat(baseEE), tablefmt.FormatFloat(testEE),
				fmt.Sprintf("%.2fx", gain))
			bars.Labels = append(bars.Labels, fmt.Sprintf("%s/%d", name, tc))
			bars.Values = append(bars.Values, gain)
		}
	}
	mean, err := stats.GeoMean(gains)
	if err != nil {
		return nil, err
	}
	minG, _ := stats.Min(gains)
	tb.AddNote("geometric-mean gain %.2fx (paper: ~1.52x average); minimum %.2fx", mean, minG)
	return &Result{
		ID:       "F4b",
		Bars:     bars,
		Title:    "Energy-efficiency gain vs vanilla Linux, PARSEC and mixes",
		Table:    tb,
		Headline: map[string]float64{"geomean-gain": mean, "min-gain": minG},
		PaperClaim: "52% better than vanilla with PARSEC benchmarks and mixes; " +
			"over 50% across all benchmarks",
	}, nil
}
