package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/core"
	"smartbalance/internal/rng"
	"smartbalance/internal/sweep"
	"smartbalance/internal/tablefmt"
)

// plantedProblem constructs a synthetic allocation problem whose
// optimal solution is known by construction — the paper's Fig. 8 "the
// distance to optimal is obtained by running our optimization algorithm
// for synthetic cases whose optimal solution is known."
//
// Construction: every thread has one designated core where it is 10x
// faster and 10x more power-efficient than anywhere else; utilisations
// are small enough (1/m) that no core can saturate under any
// allocation, and idle powers are uniform. Under the global-ratio
// objective the designated allocation then strictly maximises the
// numerator and minimises the denominator simultaneously, so it is the
// unique optimum.
func plantedProblem(m, n int, seed uint64) (*core.Problem, core.Allocation) {
	r := rng.New(seed)
	prob := &core.Problem{
		IPS:       make([][]float64, m),
		Power:     make([][]float64, m),
		Util:      make([]float64, m),
		IdlePower: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		prob.IdlePower[j] = 0.02
	}
	opt := make(core.Allocation, m)
	for i := 0; i < m; i++ {
		home := i % n
		opt[i] = arch.CoreID(home)
		base := (1 + r.Float64()) * 1e9
		pow := 0.2 + r.Float64()
		prob.IPS[i] = make([]float64, n)
		prob.Power[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if j == home {
				prob.IPS[i][j] = base * 10
				prob.Power[i][j] = pow
			} else {
				prob.IPS[i][j] = base
				prob.Power[i][j] = pow * 10
			}
		}
		prob.Util[i] = 1 / float64(m)
	}
	return prob, opt
}

// Figure8 regenerates Fig. 8: (a) the iteration budget per scalability
// scenario and the resulting distance to the known optimum, and (b) the
// remaining optimisation parameters. On brute-forceable scales the
// planted optimum is cross-checked exhaustively.
func Figure8(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	scenarios := core.ScalabilityScenarios()
	if opts.Quick {
		scenarios = scenarios[:3]
	}
	// Each scalability scenario (planted problem + brute-force
	// cross-check + two anneals) is an independent cell on the worker
	// pool; rows aggregate in scenario order.
	type f8Cell struct {
		maxIter    int
		cold, warm float64
	}
	res, err := sweep.Map(opts.Workers, len(scenarios), func(i int) (f8Cell, error) {
		sp := scenarios[i]
		prob, planted := plantedProblem(sp.Threads, sp.Cores, opts.Seed+uint64(sp.Cores))
		optScore, err := core.EvaluateAllocation(prob, planted)
		if err != nil {
			return f8Cell{}, err
		}
		// Exhaustive cross-check where feasible.
		if pow := intPow(sp.Cores, sp.Threads); pow > 0 && pow <= 100_000 {
			_, bfScore, err := core.BruteForceOptimal(prob)
			if err != nil {
				return f8Cell{}, err
			}
			if bfScore > optScore+1e-9 {
				return f8Cell{}, fmt.Errorf("F8: planted optimum is not optimal at %dc/%dt (%g > %g)",
					sp.Cores, sp.Threads, bfScore, optScore)
			}
		}
		cfg := core.DefaultAnnealConfig()
		cfg.MaxIter = core.ScaledMaxIter(sp.Cores, sp.Threads)
		cfg.Seed = opts.Seed
		dist := func(initial core.Allocation) (float64, error) {
			res, err := core.Anneal(prob, initial, cfg)
			if err != nil {
				return 0, err
			}
			d := (optScore - res.Objective) / optScore * 100
			if d < 0 {
				d = 0
			}
			return d, nil
		}
		// Cold start: everything on core 0 (an adversarial state the
		// controller never sees — it shows the capped budget's limit).
		cold, err := dist(make(core.Allocation, sp.Threads))
		if err != nil {
			return f8Cell{}, err
		}
		// Warm start: greedy initialisation, standing in for the
		// controller's real starting point (the previous epoch's
		// allocation).
		warmInit, err := core.GreedyInitial(prob)
		if err != nil {
			return f8Cell{}, err
		}
		warm, err := dist(warmInit)
		if err != nil {
			return f8Cell{}, err
		}
		return f8Cell{maxIter: cfg.MaxIter, cold: cold, warm: warm}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Figure 8(a): Opt_max_iter per scenario and distance to optimal",
		"cores", "threads", "max iterations", "cold-start dist %", "warm-start dist %")
	var worst float64
	for i, sp := range scenarios {
		if res[i].warm > worst {
			worst = res[i].warm
		}
		tb.AddRow(fmt.Sprintf("%d", sp.Cores), fmt.Sprintf("%d", sp.Threads),
			fmt.Sprintf("%d", res[i].maxIter), fmt.Sprintf("%.2f", res[i].cold), fmt.Sprintf("%.2f", res[i].warm))
	}
	tb.AddNote("warm start = greedy initialisation, the analogue of SmartBalance re-optimising from the previous epoch's allocation")
	cfg := core.DefaultAnnealConfig()
	tb.AddNote("Fig 8(b) parameters: initial perturbation %.2f (decay %.3f), "+
		"acceptance %.2f (decay %.3f), swap fraction %.2f, fixed-point rand/e^x",
		cfg.Perturb, cfg.DeltaPerturb, cfg.Accept, cfg.DeltaAccept, cfg.SwapFraction)
	return &Result{
		ID:       "F8",
		Title:    "Optimiser iteration budget and distance to optimal",
		Table:    tb,
		Headline: map[string]float64{"worst-distance-pct": worst},
		PaperClaim: "iteration caps trade solution quality for scalability; distance " +
			"to optimal stays small for capped budgets",
	}, nil
}

// intPow returns base^exp, or -1 on overflow past 1e9.
func intPow(base, exp int) int {
	v := 1
	for i := 0; i < exp; i++ {
		v *= base
		if v > 1_000_000_000 {
			return -1
		}
	}
	return v
}
