package exp

import (
	"bytes"
	"strings"
	"testing"

	"smartbalance/internal/core"
)

// quickOpts keeps test runtime low while still exercising every runner
// end to end.
func quickOpts() Options {
	return Options{
		Seed:         1,
		DurationNs:   400e6,
		ThreadCounts: []int{2},
		Quick:        true,
	}
}

func TestOptionsValidate(t *testing.T) {
	o := Options{DurationNs: 1, ThreadCounts: []int{1}}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	if o.Seed == 0 {
		t.Fatal("zero seed not defaulted")
	}
	bad := []Options{
		{DurationNs: 0, ThreadCounts: []int{1}},
		{DurationNs: 1},
		{DurationNs: 1, ThreadCounts: []int{0}},
	}
	for i, b := range bad {
		if err := b.validate(); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "F4a", "F4b", "F5", "F6", "F7", "F8",
		"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10", "A11", "A12", "A13", "A14"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries", len(reg))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if RunnerFor(id) == nil {
			t.Fatalf("RunnerFor(%s) nil", id)
		}
	}
	if RunnerFor("F99") != nil {
		t.Fatal("unknown id resolved")
	}
}

func TestTableCoreConfigs(t *testing.T) {
	res, err := TableCoreConfigs(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "T2" || res.Table.NumRows() != 12 {
		t.Fatalf("T2: %d rows", res.Table.NumRows())
	}
	if res.Headline["calibration-rel-error"] > 1e-6 {
		t.Fatalf("power calibration off by %g", res.Headline["calibration-rel-error"])
	}
	out := res.Table.String()
	for _, frag := range []string{"Huge", "Small", "8.62", "0.91"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("T2 output missing %q:\n%s", frag, out)
		}
	}
}

func TestTableBenchmarkMixes(t *testing.T) {
	res, err := TableBenchmarkMixes(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 6 {
		t.Fatalf("T3 rows = %d", res.Table.NumRows())
	}
	if !strings.Contains(res.Table.String(), "x264H-crew + x264H-bow") {
		t.Fatal("Mix1 contents wrong")
	}
}

func TestTablePredictorCoefficients(t *testing.T) {
	res, err := TablePredictorCoefficients(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 12 {
		t.Fatalf("T4 rows = %d, want 12 ordered type pairs", res.Table.NumRows())
	}
	out := res.Table.String()
	for _, frag := range []string{"Huge->Big", "Small->Medium", "ipc_src", "const"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("T4 missing %q", frag)
		}
	}
}

func TestFigure4a(t *testing.T) {
	res, err := Figure4a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 {
		t.Fatal("F4a empty")
	}
	// Quick mode runs only the high-throughput IMB subset for 400ms,
	// where gains are smallest (full runs average ~1.9x); the shape
	// check is just "SmartBalance wins".
	gain := res.Headline["geomean-gain"]
	if gain < 1.05 {
		t.Fatalf("F4a geomean gain %.2fx; paper shape (>1x) lost", gain)
	}
}

func TestFigure4b(t *testing.T) {
	res, err := Figure4b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	gain := res.Headline["geomean-gain"]
	if gain < 1.2 {
		t.Fatalf("F4b geomean gain %.2fx; paper shape (>1.2x) lost", gain)
	}
}

func TestFigure5(t *testing.T) {
	res, err := Figure5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	gain := res.Headline["geomean-gain-vs-gts"]
	if gain < 1.05 {
		t.Fatalf("F5 gain vs GTS %.2fx; paper shape (>1.05x) lost", gain)
	}
	if !strings.Contains(res.Table.String(), "1.00") {
		t.Fatal("GTS normalization column missing")
	}
}

func TestFigure6(t *testing.T) {
	res, err := Figure6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	perf := res.Headline["mean-perf-error-pct"]
	power := res.Headline["mean-power-error-pct"]
	if perf <= 0 || perf > 15 {
		t.Fatalf("F6 perf error %.2f%% outside (0,15]", perf)
	}
	if power <= 0 || power > 15 {
		t.Fatalf("F6 power error %.2f%% outside (0,15]", power)
	}
	if !strings.Contains(res.Table.String(), "AVERAGE") {
		t.Fatal("average row missing")
	}
}

func TestFigure7(t *testing.T) {
	res, err := Figure7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 3 { // quick: first three scenarios
		t.Fatalf("F7 rows = %d", res.Table.NumRows())
	}
	if res.Headline["quad-core-epoch-fraction"] <= 0 {
		t.Fatal("quad-core fraction missing")
	}
	// The fraction is real host time, so the budget depends on how fast
	// this machine runs the controller: under the race detector (which
	// slows instrumented code ~10x and shares the host with sibling test
	// binaries) only gross regressions are detectable.
	limit := 0.05
	if raceEnabled {
		limit = 0.5
	}
	if res.Headline["quad-core-epoch-fraction"] > limit {
		t.Fatalf("quad-core overhead %.2f%% of epoch (budget %.0f%%)",
			100*res.Headline["quad-core-epoch-fraction"], 100*limit)
	}
}

func TestFigure8(t *testing.T) {
	res, err := Figure8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 3 {
		t.Fatalf("F8 rows = %d", res.Table.NumRows())
	}
	if res.Headline["worst-distance-pct"] > 10 {
		t.Fatalf("distance to optimal %.2f%% too large", res.Headline["worst-distance-pct"])
	}
}

func TestPlantedProblemOptimality(t *testing.T) {
	prob, planted := plantedProblem(5, 3, 9)
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	plantedScore, err := core.EvaluateAllocation(prob, planted)
	if err != nil {
		t.Fatal(err)
	}
	best, bfScore, err := core.BruteForceOptimal(prob)
	if err != nil {
		t.Fatal(err)
	}
	if bfScore > plantedScore+1e-9 {
		t.Fatalf("planted %g beaten by %v scoring %g", plantedScore, best, bfScore)
	}
}

func TestWriteReport(t *testing.T) {
	opts := quickOpts()
	t3, err := TableBenchmarkMixes(opts)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteReport(&sb, []*Result{t3, nil}, opts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"# SmartBalance reproduction report",
		"## T3 — PARSEC benchmark mixes",
		"**Paper:**",
		"**Measured:** mixes = 6",
		"Mix6",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q:\n%s", frag, out)
		}
	}
}

func TestTableRelatedWork(t *testing.T) {
	res, err := TableRelatedWork(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 7 {
		t.Fatalf("T1 rows = %d", res.Table.NumRows())
	}
	if res.Headline["structural-checks"] != 5 {
		t.Fatalf("only %.0f/5 structural checks hold", res.Headline["structural-checks"])
	}
	out := res.Table.String()
	for _, frag := range []string{"SmartBalance", "ARM GTS 2013", "Linaro IKS 2013", "core.SmartBalance"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("T1 missing %q", frag)
		}
	}
}

func TestFigureBarsPopulated(t *testing.T) {
	res, err := Figure5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bars == nil || !res.Bars.Valid() {
		t.Fatal("F5 bar chart missing")
	}
	if len(res.Bars.Labels) != res.Table.NumRows() {
		t.Fatalf("bars %d entries vs table %d rows", len(res.Bars.Labels), res.Table.NumRows())
	}
	if res.Bars.Baseline != 1 {
		t.Fatal("F5 baseline should be GTS = 1.0")
	}
}

func TestReplicate(t *testing.T) {
	res, err := Replicate("T2", quickOpts(), []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "T2-replicated" {
		t.Fatalf("ID = %q", res.ID)
	}
	// T2's calibration error is 0 for every seed: mean 0, std 0.
	if res.Headline["calibration-rel-error-mean"] != 0 || res.Headline["calibration-rel-error-std"] != 0 {
		t.Fatalf("replicated T2 headlines: %v", res.Headline)
	}
	if res.Table.NumRows() == 0 {
		t.Fatal("no aggregated rows")
	}
	if _, err := Replicate("nope", quickOpts(), []uint64{1, 2}); err == nil {
		t.Fatal("unknown artefact accepted")
	}
	if _, err := Replicate("T2", quickOpts(), []uint64{1}); err == nil {
		t.Fatal("single seed accepted")
	}
}

// renderResult flattens a Result's canonical text (table plus bars) so
// equivalence tests can byte-compare two runs.
func renderResult(t *testing.T, res *Result) string {
	t.Helper()
	var b bytes.Buffer
	if err := res.Table.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestReplicateParallelMatchesSerial is the satellite contract for the
// sweep-engine rewiring: running the per-seed replication on one worker
// or several produces byte-identical tables and identical headlines.
func TestReplicateParallelMatchesSerial(t *testing.T) {
	serialOpts := quickOpts()
	serialOpts.Workers = 1
	parallelOpts := quickOpts()
	parallelOpts.Workers = 4
	seeds := []uint64{1, 2, 3}
	serial, err := Replicate("F4a", serialOpts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Replicate("F4a", parallelOpts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	st, pt := renderResult(t, serial), renderResult(t, parallel)
	if st != pt {
		t.Fatalf("parallel replication table differs from serial:\n--- serial\n%s\n--- parallel\n%s", st, pt)
	}
	if len(serial.Headline) == 0 {
		t.Fatal("no headlines to compare")
	}
	for k, v := range serial.Headline {
		if pv, ok := parallel.Headline[k]; !ok || pv != v {
			t.Fatalf("headline %q: serial %v, parallel %v (ok=%v)", k, v, pv, ok)
		}
	}
}

// TestFiguresParallelMatchSerial asserts the rewired figure runners
// themselves are worker-count invariant.
func TestFiguresParallelMatchSerial(t *testing.T) {
	for _, id := range []string{"F4b", "F5", "F6", "F8"} {
		run := RunnerFor(id)
		serialOpts := quickOpts()
		serialOpts.Workers = 1
		parallelOpts := quickOpts()
		parallelOpts.Workers = 4
		serial, err := run(serialOpts)
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		parallel, err := run(parallelOpts)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if st, pt := renderResult(t, serial), renderResult(t, parallel); st != pt {
			t.Errorf("%s: parallel table differs from serial", id)
		}
	}
}

func TestReplicateStability(t *testing.T) {
	// The F5 gain must be stable across seeds: std well below the mean
	// effect size (otherwise the headline comparisons are seed noise).
	res, err := Replicate("F5", quickOpts(), []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	mean := res.Headline["geomean-gain-vs-gts-mean"]
	std := res.Headline["geomean-gain-vs-gts-std"]
	if mean <= 1 {
		t.Fatalf("replicated F5 gain mean %.3f", mean)
	}
	if std > 0.2*(mean-1) {
		t.Fatalf("F5 gain unstable across seeds: mean %.3f, std %.3f", mean, std)
	}
}
