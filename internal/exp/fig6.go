package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/core"
	"smartbalance/internal/stats"
	"smartbalance/internal/sweep"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// Figure6 regenerates Fig. 6: the per-benchmark performance and power
// prediction error of the trained Θ/power models on held-out workload
// variants. Paper headline: 4.2% average performance error, 5% average
// power error.
func Figure6(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	tc := core.DefaultTrainConfig()
	tc.Seed = opts.Seed
	pred, err := core.Train(arch.Table2Types(), tc)
	if err != nil {
		return nil, err
	}
	benches := workload.Benchmarks()
	if opts.Quick {
		benches = benches[:4]
	}
	// Held-out variants: jittered workers from a seed disjoint from the
	// training corpus seeds. Each benchmark's error evaluation is an
	// independent cell on the worker pool; rows aggregate in order.
	heldSeed := opts.Seed*0x9E37 + 0xC0FFEE
	type f6Cell struct {
		perf, power float64
	}
	res, err := sweep.Map(opts.Workers, len(benches), func(i int) (f6Cell, error) {
		name := benches[i]
		specs, err := workload.Benchmark(name, 2, heldSeed)
		if err != nil {
			return f6Cell{}, err
		}
		var phases []workload.Phase
		for j := range specs {
			phases = append(phases, specs[j].Phases...)
		}
		perf, power, err := core.PredictionError(pred, phases, tc.SensorSigma, opts.Seed+7)
		if err != nil {
			return f6Cell{}, fmt.Errorf("F6 %s: %w", name, err)
		}
		return f6Cell{perf: perf, power: power}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Figure 6: average prediction error across PARSEC-like workloads",
		"benchmark", "perf error %", "power error %")
	var perfAll, powerAll []float64
	for i, name := range benches {
		perfAll = append(perfAll, res[i].perf)
		powerAll = append(powerAll, res[i].power)
		tb.AddRow(name, fmt.Sprintf("%.2f", res[i].perf), fmt.Sprintf("%.2f", res[i].power))
	}
	meanPerf, err := stats.Mean(perfAll)
	if err != nil {
		return nil, err
	}
	meanPower, err := stats.Mean(powerAll)
	if err != nil {
		return nil, err
	}
	tb.AddRow("AVERAGE", fmt.Sprintf("%.2f", meanPerf), fmt.Sprintf("%.2f", meanPower))
	tb.AddNote("paper reports 4.2%% average performance and 5%% power error")
	return &Result{
		ID:       "F6",
		Title:    "Prediction error across PARSEC-like workloads",
		Table:    tb,
		Headline: map[string]float64{"mean-perf-error-pct": meanPerf, "mean-power-error-pct": meanPower},
		PaperClaim: "runtime prediction of performance and power incurs an average " +
			"error of 4.2% and 5% respectively",
	}, nil
}
