package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/core"
	"smartbalance/internal/kernel"
	"smartbalance/internal/tablefmt"
)

// AblationObjectiveGoals (A10) exercises Section 4.3's remark that the
// cost function "can be defined in several ways according to the
// desired optimization goals": the same SmartBalance machinery is run
// with the energy-efficiency goal (the paper's) and the
// throughput-first goal, showing the performance-vs-efficiency trade
// the goal selection buys.
func AblationObjectiveGoals(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.QuadHMP()
	tc := core.DefaultTrainConfig()
	tc.Seed = opts.Seed
	pred, err := core.Train(arch.Table2Types(), tc)
	if err != nil {
		return nil, err
	}
	modes := []core.ObjectiveMode{core.GlobalRatio, core.MaxThroughput}
	workloads := []string{"swaptions", "Mix5"}
	if opts.Quick {
		workloads = []string{"Mix5"}
	}

	tb := tablefmt.New("Ablation A10: optimisation goal (Sec. 4.3)",
		"workload", "goal", "IPS", "power (W)", "IPS/W")
	type cell struct{ ips, pow, ee float64 }
	results := map[string]map[core.ObjectiveMode]cell{}
	for _, name := range workloads {
		results[name] = map[core.ObjectiveMode]cell{}
		for _, mode := range modes {
			cfg := core.DefaultConfig()
			cfg.Anneal.Seed = opts.Seed
			cfg.Objective = mode
			sb, err := core.New(pred, cfg)
			if err != nil {
				return nil, err
			}
			specs, err := mkWorkload(name, 4, opts.Seed)
			if err != nil {
				return nil, err
			}
			st, err := runScenarioWithConfig(plat,
				func(*arch.Platform) (kernel.Balancer, error) { return sb, nil },
				specs, opts.DurationNs, kernel.DefaultConfig())
			if err != nil {
				return nil, fmt.Errorf("A10 %s/%s: %w", name, mode, err)
			}
			c := cell{st.IPS(), st.PowerW(), st.EnergyEfficiency()}
			results[name][mode] = c
			tb.AddRow(name, mode.String(), tablefmt.FormatFloat(c.ips),
				fmt.Sprintf("%.3f", c.pow), tablefmt.FormatFloat(c.ee))
		}
	}
	// Headline: on the last workload, the trade-off factors.
	last := results[workloads[len(workloads)-1]]
	perfGain := last[core.MaxThroughput].ips / last[core.GlobalRatio].ips
	eeCost := last[core.GlobalRatio].ee / last[core.MaxThroughput].ee
	tb.AddNote("throughput goal buys %.2fx IPS at %.2fx worse IPS/W (last workload)", perfGain, eeCost)
	return &Result{
		ID:       "A10",
		Title:    "Optimisation-goal selection",
		Table:    tb,
		Headline: map[string]float64{"throughput-gain": perfGain, "ee-cost-factor": eeCost},
		PaperClaim: "Sec. 4.3: the objective can be defined in several ways according " +
			"to the desired optimization goals",
	}, nil
}
