package exp

import (
	"testing"
)

func TestAblationPredictionVsOracle(t *testing.T) {
	res, err := AblationPredictionVsOracle(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	retained := res.Headline["geomean-retained"]
	// The predictor's ~10% error must not cost much placement quality:
	// prediction-driven SmartBalance should retain most of the oracle's
	// energy efficiency. (It can even exceed 1.0 on short runs because
	// the oracle optimises steady-state matrices, not the transient.)
	if retained < 0.80 {
		t.Fatalf("prediction retains only %.1f%% of oracle EE", 100*retained)
	}
	if retained > 1.3 {
		t.Fatalf("prediction 'beats' oracle by %.2fx; something is inconsistent", retained)
	}
}

func TestAblationObjectiveMode(t *testing.T) {
	res, err := AblationObjectiveMode(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	adv := res.Headline["geomean-global-advantage"]
	// The global-ratio objective must yield at least as good overall
	// IPS/W as the literal per-core sum (that is the reason for the
	// documented deviation).
	if adv < 1.0 {
		t.Fatalf("global objective worse than per-core sum: %.3f", adv)
	}
}

func TestAblationFixedPointSA(t *testing.T) {
	res, err := AblationFixedPointSA(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	q := res.Headline["geomean-quality-ratio"]
	if q < 0.93 || q > 1.07 {
		t.Fatalf("fixed-point quality ratio %.3f outside [0.93, 1.07]", q)
	}
}

func TestAblationEpochLength(t *testing.T) {
	res, err := AblationEpochLength(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 3 {
		t.Fatalf("A4 rows = %d", res.Table.NumRows())
	}
	if res.Headline["best-relative-ee"] <= 0 {
		t.Fatal("A4 headline missing")
	}
}

func TestAblationMigrationPenalty(t *testing.T) {
	res, err := AblationMigrationPenalty(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	worst := res.Headline["worst-relative-ee"]
	// Even a 1ms cold-cache penalty must not destroy the gains at 60ms
	// epochs with few migrations.
	if worst < 0.7 {
		t.Fatalf("migration penalty collapses EE to %.1f%% of zero-cost", 100*worst)
	}
}

func TestAblationFeatureSparsity(t *testing.T) {
	res, err := AblationFeatureSparsity(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 3 {
		t.Fatalf("A6 rows = %d", res.Table.NumRows())
	}
	full := res.Headline["full-feature-error-pct"]
	if full <= 0 || full > 20 {
		t.Fatalf("A6 full-feature error %.2f%% implausible", full)
	}
}

func TestAblationDVFSHeterogeneity(t *testing.T) {
	res, err := AblationDVFSHeterogeneity(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	gain := res.Headline["geomean-gain"]
	// Frequency-only heterogeneity gives far less leverage than
	// architectural heterogeneity (the private L2 softens the memory
	// wall), but SmartBalance must not *lose* to vanilla. Full-scale
	// runs show ~1.15x; the 400ms quick subset is allowed to break even.
	if gain < 0.99 {
		t.Fatalf("A7 DVFS gain %.2fx; Sec. 3 generality claim lost", gain)
	}
}

func TestAblationThermal(t *testing.T) {
	res, err := AblationThermal(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 2 {
		t.Fatalf("A8 rows = %d", res.Table.NumRows())
	}
	plain := res.Headline["plain-peak-c"]
	if plain <= 45 || plain > 120 {
		t.Fatalf("plain peak temperature %.1fC implausible", plain)
	}
	if res.Headline["coolest-peak-c"] > plain+1 {
		t.Fatal("thermal awareness made the die hotter across the sweep")
	}
}

func TestAblationBusContention(t *testing.T) {
	res, err := AblationBusContention(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 2 {
		t.Fatalf("A9 rows = %d", res.Table.NumRows())
	}
	gain := res.Headline["min-gain-under-contention"]
	if gain < 1.2 {
		t.Fatalf("contention erased the gain: %.2fx", gain)
	}
}

func TestAblationObjectiveGoals(t *testing.T) {
	res, err := AblationObjectiveGoals(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 2 {
		t.Fatalf("A10 rows = %d", res.Table.NumRows())
	}
	// The throughput goal must buy throughput and cost efficiency.
	if res.Headline["throughput-gain"] < 1.1 {
		t.Fatalf("throughput goal gained only %.2fx IPS", res.Headline["throughput-gain"])
	}
	if res.Headline["ee-cost-factor"] < 1.1 {
		t.Fatalf("throughput goal cost only %.2fx IPS/W; goals indistinct", res.Headline["ee-cost-factor"])
	}
}

func TestAblationFairness(t *testing.T) {
	res, err := AblationFairness(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 2 { // Mix5's two benchmarks
		t.Fatalf("A11 rows = %d", res.Table.NumRows())
	}
	worst := res.Headline["worst-smart-fairness"]
	// The index must be computed and sane; the *finding* is that the
	// EE objective trades some intra-benchmark fairness (documented in
	// EXPERIMENTS.md), so no high bar is asserted here — only that no
	// worker is fully starved (index well above 1/n = 0.25 for n=4).
	if worst <= 0.26 || worst > 1.0001 {
		t.Fatalf("worst fairness %.3f outside plausible range", worst)
	}
}

func TestAblationFaultRobustness(t *testing.T) {
	res, err := AblationFaultRobustness(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 3 {
		t.Fatalf("A13 rows = %d", res.Table.NumRows())
	}
	t.Logf("clean=%.3f min=%.3f blackout=%.3f",
		res.Headline["clean-gain"], res.Headline["min-gain-under-faults"],
		res.Headline["gain-at-full-dropout"])
	if res.Headline["clean-gain"] < 1.1 {
		t.Fatalf("clean gain collapsed: %.2fx", res.Headline["clean-gain"])
	}
	// The degradation contract: faults erode the gain but hardened
	// SmartBalance never does worse than the counter-agnostic vanilla
	// baseline — under total counter dropout it skips rebalancing and
	// lands exactly on it.
	if g := res.Headline["gain-at-full-dropout"]; g < 0.999 {
		t.Fatalf("blackout dropped SmartBalance below vanilla: %.3fx", g)
	}
	if g := res.Headline["min-gain-under-faults"]; g < 0.99 {
		t.Fatalf("a fault level dropped SmartBalance below vanilla: %.3fx", g)
	}
	// Determinism: a second run reproduces the headline bit-for-bit.
	res2, err := AblationFaultRobustness(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res.Headline {
		if res2.Headline[k] != v { //sbvet:allow floateq(determinism check: reruns must be bit-identical)
			t.Fatalf("headline %q not deterministic: %v vs %v", k, v, res2.Headline[k])
		}
	}
}

func TestAblationSensorNoise(t *testing.T) {
	res, err := AblationSensorNoise(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 2 {
		t.Fatalf("A12 rows = %d", res.Table.NumRows())
	}
	if res.Headline["min-gain-under-noise"] < 1.1 {
		t.Fatalf("sensor noise erased the gain: %.2fx", res.Headline["min-gain-under-noise"])
	}
}
