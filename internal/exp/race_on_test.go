//go:build race

package exp

// raceEnabled: the race detector is on, so host-timed code runs many
// times slower and shares the machine with instrumented sibling test
// binaries; host-timing assertions widen their budgets accordingly.
const raceEnabled = true
