package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/fault"
	"smartbalance/internal/kernel"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// faultSeedTag decorrelates the fault injector's random stream from the
// kernel's for the same experiment seed. It matches the tag used by the
// sweep engine and sbsim, so any A13 cell can be reproduced from either
// front end with the same plan and seed.
const faultSeedTag = 0xFA_17_1A_9E_5D

// compositeFaultPlan builds the A13 fault mix at severity f in [0, 1]:
// the five mutually exclusive sensor faults share probability mass f
// (weighted toward drops, the most common real failure), and valid
// migration requests are refused with probability f.
func compositeFaultPlan(f float64) fault.Plan {
	return fault.Plan{
		DropRate:        0.4 * f,
		StaleRate:       0.2 * f,
		CorruptRate:     0.2 * f,
		PowerDropRate:   0.1 * f,
		PowerSpikeRate:  0.1 * f,
		MigrateFailRate: f,
	}
}

// AblationFaultRobustness (A13) stresses the premise behind the
// hardened sense→predict→balance loop: a *sensing-driven* balancer is
// only deployable if sensing failures degrade it gracefully. A
// composite fault mix (drops, stale replays, corruption, power-sensor
// faults, refused migrations) is swept from clean to a total counter
// blackout, and the energy-efficiency gain over vanilla re-measured at
// each severity. The contract under test: the gain decays toward 1x as
// faults erase the balancer's information advantage, and under 100 %
// sensor dropout hardened SmartBalance skips rebalancing entirely —
// landing exactly on the counter-agnostic vanilla baseline, never
// below it.
func AblationFaultRobustness(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.OctaBigLittle()
	smart, err := trainedSmartBalanceFactory(arch.BigLittleTypes(), opts.Seed)
	if err != nil {
		return nil, err
	}
	vanilla := func(*arch.Platform) (kernel.Balancer, error) { return balancer.Vanilla{}, nil }
	gts := func(p *arch.Platform) (kernel.Balancer, error) { return balancer.NewGTS(p) }

	rows := []struct {
		label string
		plan  fault.Plan
	}{
		{"clean", fault.Plan{}},
		{"25% mix", compositeFaultPlan(0.25)},
		{"50% mix", compositeFaultPlan(0.50)},
		{"75% mix", compositeFaultPlan(0.75)},
		{"blackout", fault.Plan{DropRate: 1}},
	}
	if opts.Quick {
		rows = []struct {
			label string
			plan  fault.Plan
		}{rows[0], rows[2], rows[4]}
	}

	run := func(bf balancerFactory, plan fault.Plan) (*kernel.RunStats, error) {
		specs, err := workload.Mix("Mix5", 4, opts.Seed)
		if err != nil {
			return nil, err
		}
		cfg := kernel.DefaultConfig()
		cfg.Seed = opts.Seed
		if !plan.IsZero() {
			// A fresh injector per run: injectors are stateful (stale
			// replay history, fault counters) and serve one kernel.
			inj, err := fault.New(plan, opts.Seed^faultSeedTag)
			if err != nil {
				return nil, err
			}
			cfg.Faults = inj
		}
		return runScenarioWithConfig(plat, bf, specs, opts.DurationNs, cfg)
	}

	tb := tablefmt.New("Ablation A13: fault-injection robustness (big.LITTLE, Mix5, 4 threads)",
		"fault mix", "vanilla IPS/W", "gts IPS/W", "smartbalance IPS/W", "SB gain")
	headline := map[string]float64{}
	minGain := 1e9
	for _, row := range rows {
		van, err := run(vanilla, row.plan)
		if err != nil {
			return nil, fmt.Errorf("A13 %s vanilla: %w", row.label, err)
		}
		gt, err := run(gts, row.plan)
		if err != nil {
			return nil, fmt.Errorf("A13 %s gts: %w", row.label, err)
		}
		sm, err := run(smart, row.plan)
		if err != nil {
			return nil, fmt.Errorf("A13 %s smart: %w", row.label, err)
		}
		gain := sm.EnergyEfficiency() / van.EnergyEfficiency()
		if gain < minGain {
			minGain = gain
		}
		switch row.label {
		case "clean":
			headline["clean-gain"] = gain
		case "blackout":
			headline["gain-at-full-dropout"] = gain
		}
		tb.AddRow(row.label,
			tablefmt.FormatFloat(van.EnergyEfficiency()),
			tablefmt.FormatFloat(gt.EnergyEfficiency()),
			tablefmt.FormatFloat(sm.EnergyEfficiency()),
			fmt.Sprintf("%.2fx", gain))
	}
	headline["min-gain-under-faults"] = minGain
	tb.AddNote("faults corrupt only what balancers observe; vanilla and GTS read no counters and are unaffected")
	tb.AddNote("n%% mix: drop/stale/corrupt/powerdrop/powerspike split n%% sensor-fault mass; migrations also fail n%% of the time")
	tb.AddNote("blackout = 100%% counter dropout: hardened SmartBalance skips rebalancing and holds fork placement")
	return &Result{
		ID:       "A13",
		Title:    "Fault-injection robustness and graceful degradation",
		Table:    tb,
		Headline: headline,
		PaperClaim: "not in the paper — hardening ablation: Sec. 6.4 flags the dependence " +
			"on counters and sensors; under injected sensing faults the gain must decay " +
			"gracefully toward vanilla and never fall below it",
	}, nil
}
