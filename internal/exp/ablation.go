package exp

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/core"
	"smartbalance/internal/kernel"
	"smartbalance/internal/rng"
	"smartbalance/internal/stats"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// Ablation studies for the design decisions DESIGN.md §5 calls out.
// These are not paper artefacts; they quantify what each SmartBalance
// ingredient buys. IDs A1..A5 extend the smartbench registry.

// ablationWorkloads is the mixed bag every ablation runs on.
func ablationWorkloads(quick bool) []string {
	if quick {
		return []string{"Mix5"}
	}
	return []string{"canneal", "swaptions", "Mix1", "Mix5", "Mix6"}
}

func mkWorkload(name string, threads int, seed uint64) ([]workload.ThreadSpec, error) {
	for _, m := range workload.MixNames() {
		if m == name {
			return workload.Mix(name, threads, seed)
		}
	}
	return workload.Benchmark(name, threads, seed)
}

// AblationPredictionVsOracle (A1) compares prediction-driven
// SmartBalance against the oracle-matrix balancer — what the ~10%
// prediction error actually costs in achieved energy efficiency.
func AblationPredictionVsOracle(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.QuadHMP()
	smart, err := trainedSmartBalanceFactory(arch.Table2Types(), opts.Seed)
	if err != nil {
		return nil, err
	}
	oracle := func(*arch.Platform) (kernel.Balancer, error) {
		cfg := core.DefaultConfig()
		cfg.Anneal.Seed = opts.Seed
		return core.NewOracle(cfg)
	}
	tb := tablefmt.New("Ablation A1: prediction-driven vs oracle matrices",
		"workload", "threads", "oracle IPS/W", "predicted IPS/W", "retained")
	var retained []float64
	for _, name := range ablationWorkloads(opts.Quick) {
		for _, tc := range opts.ThreadCounts {
			name, tc := name, tc
			mk := func() ([]workload.ThreadSpec, error) { return mkWorkload(name, tc, opts.Seed) }
			ratio, oracleEE, smartEE, err := eeGain(plat, oracle, smart, mk, opts.DurationNs, opts.Seed)
			if err != nil {
				return nil, fmt.Errorf("A1 %s/%d: %w", name, tc, err)
			}
			retained = append(retained, ratio)
			tb.AddRow(name, fmt.Sprintf("%d", tc),
				tablefmt.FormatFloat(oracleEE), tablefmt.FormatFloat(smartEE),
				fmt.Sprintf("%.1f%%", 100*ratio))
		}
	}
	mean, err := stats.GeoMean(retained)
	if err != nil {
		return nil, err
	}
	tb.AddNote("retained = predicted-matrix EE / oracle-matrix EE; geomean %.1f%%", 100*mean)
	return &Result{
		ID:       "A1",
		Title:    "Prediction vs oracle matrices",
		Table:    tb,
		Headline: map[string]float64{"geomean-retained": mean},
		PaperClaim: "implicit in Sec. 4.2.2: prediction avoids sampling overhead " +
			"without giving up placement quality",
	}, nil
}

// AblationObjectiveMode (A2) compares the default global-ratio
// objective against the literal Eq. (11) per-core ratio sum — the
// deviation DESIGN.md §4 documents.
func AblationObjectiveMode(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	r := rng.New(opts.Seed)
	tb := tablefmt.New("Ablation A2: global-ratio vs literal Eq.(11) objective",
		"threads", "cores", "global-ratio EE (model)", "per-core-sum EE (model)", "global/sum")
	var ratios []float64
	trials := 8
	if opts.Quick {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		m := 4 + r.Intn(8)
		n := 4
		prob := randomAblationProblem(r, m, n)
		// Optimise under each mode, then score both results under the
		// *measured* quantity (overall IPS/W = global ratio).
		score := func(mode core.ObjectiveMode) (float64, error) {
			p := *prob
			p.Mode = mode
			cfg := core.DefaultAnnealConfig()
			cfg.MaxIter = 1024
			cfg.Seed = opts.Seed + uint64(trial)
			res, err := core.Anneal(&p, make(core.Allocation, m), cfg)
			if err != nil {
				return 0, err
			}
			// Evaluate the chosen allocation under the global metric.
			pEval := *prob
			pEval.Mode = core.GlobalRatio
			return core.EvaluateAllocation(&pEval, res.Allocation)
		}
		g, err := score(core.GlobalRatio)
		if err != nil {
			return nil, err
		}
		s, err := score(core.PerCoreRatioSum)
		if err != nil {
			return nil, err
		}
		if s <= 0 {
			continue
		}
		ratios = append(ratios, g/s)
		tb.AddRow(fmt.Sprintf("%d", m), fmt.Sprintf("%d", n),
			tablefmt.FormatFloat(g), tablefmt.FormatFloat(s), fmt.Sprintf("%.2fx", g/s))
	}
	mean, err := stats.GeoMean(ratios)
	if err != nil {
		return nil, err
	}
	tb.AddNote("allocations optimised under each mode, both scored as overall IPS/W; geomean advantage %.2fx", mean)
	return &Result{
		ID:         "A2",
		Title:      "Objective mode ablation",
		Table:      tb,
		Headline:   map[string]float64{"geomean-global-advantage": mean},
		PaperClaim: "DESIGN.md §4: the literal per-core ratio sum cannot reward power-gating",
	}, nil
}

// AblationFixedPointSA (A3) compares Algorithm 1's fixed-point
// rand/e^x acceptance path against a float implementation, in both
// solution quality and optimiser speed.
func AblationFixedPointSA(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	r := rng.New(opts.Seed ^ 0xF1DE)
	trials := 10
	if opts.Quick {
		trials = 3
	}
	tb := tablefmt.New("Ablation A3: fixed-point vs floating-point Metropolis rule",
		"trial", "fixed-point J", "float J", "fixed/float")
	var quality []float64
	for trial := 0; trial < trials; trial++ {
		prob := randomAblationProblem(r, 10, 4)
		cfg := core.DefaultAnnealConfig()
		cfg.MaxIter = 1024
		cfg.Seed = opts.Seed + uint64(trial)
		fixed, err := core.Anneal(prob, make(core.Allocation, 10), cfg)
		if err != nil {
			return nil, err
		}
		cfg.UseFloat = true
		fl, err := core.Anneal(prob, make(core.Allocation, 10), cfg)
		if err != nil {
			return nil, err
		}
		if fl.Objective <= 0 {
			continue
		}
		q := fixed.Objective / fl.Objective
		quality = append(quality, q)
		tb.AddRow(fmt.Sprintf("%d", trial),
			tablefmt.FormatFloat(fixed.Objective), tablefmt.FormatFloat(fl.Objective),
			fmt.Sprintf("%.3f", q))
	}
	mean, err := stats.GeoMean(quality)
	if err != nil {
		return nil, err
	}
	tb.AddNote("paper: fixed-point rand/e^x trades precision 'without significantly compromising the quality'")
	return &Result{
		ID:         "A3",
		Title:      "Fixed-point vs float simulated annealing",
		Table:      tb,
		Headline:   map[string]float64{"geomean-quality-ratio": mean},
		PaperClaim: "custom fixed-point rand and e^x ... without significantly compromising quality",
	}, nil
}

// AblationEpochLength (A4) sweeps the SmartBalance epoch length — how
// many CFS periods each sense-predict-balance cycle covers.
func AblationEpochLength(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.QuadHMP()
	smart, err := trainedSmartBalanceFactory(arch.Table2Types(), opts.Seed)
	if err != nil {
		return nil, err
	}
	epochs := []int64{15e6, 30e6, 60e6, 120e6, 240e6}
	if opts.Quick {
		epochs = []int64{30e6, 60e6, 120e6}
	}
	tb := tablefmt.New("Ablation A4: epoch-length sweep (Mix5, 4 threads)",
		"epoch (ms)", "IPS/W", "migrations", "relative to 60ms")
	var base float64
	baseSet := false
	type row struct {
		epoch int64
		ee    float64
		mig   int
	}
	var rows []row
	for _, ep := range epochs {
		specs, err := workload.Mix("Mix5", 4, opts.Seed)
		if err != nil {
			return nil, err
		}
		m := kernel.DefaultConfig()
		m.EpochNs = ep
		m.Seed = opts.Seed
		st, err := runScenarioWithConfig(plat, smart, specs, opts.DurationNs, m)
		if err != nil {
			return nil, fmt.Errorf("A4 epoch %dms: %w", ep/1e6, err)
		}
		ee := st.EnergyEfficiency()
		rows = append(rows, row{ep, ee, st.Migrations})
		if ep == 60e6 {
			base = ee
			baseSet = true
		}
	}
	if !baseSet {
		base = rows[len(rows)/2].ee
	}
	var best float64
	for _, rr := range rows {
		rel := rr.ee / base
		if rel > best {
			best = rel
		}
		tb.AddRow(fmt.Sprintf("%d", rr.epoch/1e6), tablefmt.FormatFloat(rr.ee),
			fmt.Sprintf("%d", rr.mig), fmt.Sprintf("%.3f", rel))
	}
	tb.AddNote("the paper fixes the epoch at 60ms; shorter epochs react faster but migrate more")
	return &Result{
		ID:         "A4",
		Title:      "Epoch-length sweep",
		Table:      tb,
		Headline:   map[string]float64{"best-relative-ee": best},
		PaperClaim: "epoch covers multiple CFS periods (60ms in Sec. 6.3)",
	}, nil
}

// AblationMigrationPenalty (A5) sweeps the cold-cache migration
// penalty to show the balancer's gains survive realistic migration
// costs.
func AblationMigrationPenalty(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := arch.QuadHMP()
	smart, err := trainedSmartBalanceFactory(arch.Table2Types(), opts.Seed)
	if err != nil {
		return nil, err
	}
	penalties := []int64{0, 50e3, 200e3, 1e6, 5e6}
	if opts.Quick {
		penalties = []int64{0, 1e6}
	}
	tb := tablefmt.New("Ablation A5: migration-penalty sweep (Mix1, 4 threads)",
		"penalty (us)", "IPS/W", "migrations", "relative to zero-cost")
	var base float64
	var minRel float64 = 1
	for i, pen := range penalties {
		specs, err := workload.Mix("Mix1", 4, opts.Seed)
		if err != nil {
			return nil, err
		}
		cfg := kernel.DefaultConfig()
		cfg.MigrationPenaltyNs = pen
		cfg.Seed = opts.Seed
		st, err := runScenarioWithConfig(plat, smart, specs, opts.DurationNs, cfg)
		if err != nil {
			return nil, fmt.Errorf("A5 penalty %dus: %w", pen/1000, err)
		}
		ee := st.EnergyEfficiency()
		if i == 0 {
			base = ee
		}
		rel := ee / base
		if rel < minRel {
			minRel = rel
		}
		tb.AddRow(fmt.Sprintf("%d", pen/1000), tablefmt.FormatFloat(ee),
			fmt.Sprintf("%d", st.Migrations), fmt.Sprintf("%.3f", rel))
	}
	tb.AddNote("epoch-granular migration keeps the balancer robust to multi-ms cold-cache costs")
	return &Result{
		ID:         "A5",
		Title:      "Migration-penalty sweep",
		Table:      tb,
		Headline:   map[string]float64{"worst-relative-ee": minRel},
		PaperClaim: "migration overhead assumed at 50% of threads per epoch (Fig. 7)",
	}, nil
}

// randomAblationProblem builds a heterogeneity-shaped random problem:
// per-thread IPS scales with a per-core capability factor plus thread
// affinity noise; power scales super-linearly with capability.
func randomAblationProblem(r *rng.Rand, m, n int) *core.Problem {
	capability := make([]float64, n)
	for j := range capability {
		capability[j] = 0.5 + 3.5*float64(j)/float64(n-1+1)
	}
	p := &core.Problem{
		IPS:       make([][]float64, m),
		Power:     make([][]float64, m),
		Util:      make([]float64, m),
		IdlePower: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		p.IdlePower[j] = 0.01 * capability[j]
	}
	for i := 0; i < m; i++ {
		p.IPS[i] = make([]float64, n)
		p.Power[i] = make([]float64, n)
		scalability := r.Float64() // how much the thread benefits from big cores
		for j := 0; j < n; j++ {
			speed := 1 + scalability*(capability[j]-1)
			p.IPS[i][j] = speed * (0.3 + r.Float64()) * 1e9
			p.Power[i][j] = 0.05 + 0.4*capability[j]*capability[j]*(0.8+0.4*r.Float64())
		}
		p.Util[i] = 0.2 + 0.8*r.Float64()
	}
	return p
}
