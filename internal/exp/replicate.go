package exp

import (
	"fmt"
	"sort"

	"smartbalance/internal/stats"
	"smartbalance/internal/sweep"
	"smartbalance/internal/tablefmt"
)

// Replicate runs an artefact across several seeds and aggregates every
// headline metric (mean, standard deviation, min, max) — the
// replication study backing any single-seed number smartbench reports.
// seeds must contain at least two distinct values.
//
// The per-seed runs are independent and execute on the sweep engine's
// worker pool (opts.Workers); aggregation happens in seed order, so the
// result is byte-identical to a serial run.
func Replicate(id string, opts Options, seeds []uint64) (*Result, error) {
	runner := RunnerFor(id)
	if runner == nil {
		return nil, fmt.Errorf("exp: unknown artefact %q", id)
	}
	if len(seeds) < 2 {
		return nil, fmt.Errorf("exp: replication needs >= 2 seeds, got %d", len(seeds))
	}
	runs, err := sweep.Map(opts.Workers, len(seeds), func(i int) (*Result, error) {
		o := opts
		o.Seed = seeds[i]
		res, err := runner(o)
		if err != nil {
			return nil, fmt.Errorf("exp: replicate %s seed %d: %w", id, seeds[i], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	samples := map[string][]float64{}
	var title string
	for _, res := range runs {
		title = res.Title
		for k, v := range res.Headline {
			samples[k] = append(samples[k], v)
		}
	}
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	tb := tablefmt.New(fmt.Sprintf("Replication of %s over %d seeds", id, len(seeds)),
		"headline metric", "mean", "std", "min", "max", "n")
	headline := map[string]float64{}
	for _, k := range keys {
		sm, err := stats.Summarize(samples[k])
		if err != nil {
			return nil, err
		}
		tb.AddRow(k,
			tablefmt.FormatFloat(sm.Mean), tablefmt.FormatFloat(sm.Std),
			tablefmt.FormatFloat(sm.Min), tablefmt.FormatFloat(sm.Max),
			fmt.Sprintf("%d", sm.N))
		headline[k+"-mean"] = sm.Mean
		headline[k+"-std"] = sm.Std
	}
	tb.AddNote("seeds: %v", seeds)
	return &Result{
		ID:         id + "-replicated",
		Title:      title + " (seed replication)",
		Table:      tb,
		Headline:   headline,
		PaperClaim: "replication: single-seed numbers must be stable across seeds",
	}, nil
}
