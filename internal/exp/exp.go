// Package exp implements the experiment harness: one runner per table
// and figure of the paper's evaluation (Tables 2-4, Figures 4-8). Each
// runner produces a structured Result whose rows regenerate the paper's
// artefact, plus headline metrics the EXPERIMENTS.md comparison is
// written from.
package exp

import (
	"errors"
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/core"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Seed drives workload jitter, sensor noise, and the optimiser.
	Seed uint64
	// DurationNs is the simulated span of each scenario run.
	DurationNs int64
	// ThreadCounts is the parallelisation sweep (the paper uses 2,4,8).
	ThreadCounts []int
	// Quick trims workload sets and repetition counts so the full suite
	// runs in seconds; used by tests. Full runs leave it false.
	Quick bool
	// Workers bounds the sweep-engine worker pool the runners fan their
	// independent scenario cells out on (internal/sweep). <= 0 selects
	// GOMAXPROCS; 1 forces the serial path. Results are byte-identical
	// for every setting — parallelism only changes wall-clock time.
	Workers int
}

// DefaultOptions returns the standard experiment configuration.
func DefaultOptions() Options {
	return Options{
		Seed:         1,
		DurationNs:   1_200e6, // 1.2 s simulated per scenario
		ThreadCounts: []int{2, 4, 8},
	}
}

func (o *Options) validate() error {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.DurationNs <= 0 {
		return errors.New("exp: non-positive duration")
	}
	if len(o.ThreadCounts) == 0 {
		return errors.New("exp: empty thread-count sweep")
	}
	for _, tc := range o.ThreadCounts {
		if tc < 1 {
			return fmt.Errorf("exp: invalid thread count %d", tc)
		}
	}
	return nil
}

// Result is one regenerated table or figure.
type Result struct {
	// ID is the paper artefact id: "T2".."T4", "F4a".."F8".
	ID string
	// Title describes the artefact.
	Title string
	// Table holds the regenerated rows.
	Table *tablefmt.Table
	// Headline carries the metrics compared against the paper in
	// EXPERIMENTS.md (e.g. mean energy-efficiency gain).
	Headline map[string]float64
	// PaperClaim documents the corresponding number(s) in the paper.
	PaperClaim string
	// Bars, when set, renders the artefact the way the paper draws it
	// (Figs. 4 and 5 are per-workload bar charts).
	Bars *tablefmt.Bars
}

// Runner regenerates one artefact.
type Runner func(Options) (*Result, error)

// Registry maps artefact ids to runners, in paper order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"T1", TableRelatedWork},
		{"T2", TableCoreConfigs},
		{"T3", TableBenchmarkMixes},
		{"T4", TablePredictorCoefficients},
		{"F4a", Figure4a},
		{"F4b", Figure4b},
		{"F5", Figure5},
		{"F6", Figure6},
		{"F7", Figure7},
		{"F8", Figure8},
		{"A1", AblationPredictionVsOracle},
		{"A2", AblationObjectiveMode},
		{"A3", AblationFixedPointSA},
		{"A4", AblationEpochLength},
		{"A5", AblationMigrationPenalty},
		{"A6", AblationFeatureSparsity},
		{"A7", AblationDVFSHeterogeneity},
		{"A8", AblationThermal},
		{"A9", AblationBusContention},
		{"A10", AblationObjectiveGoals},
		{"A11", AblationFairness},
		{"A12", AblationSensorNoise},
		{"A13", AblationFaultRobustness},
		{"A14", AblationContention},
	}
}

// RunnerFor returns the runner for an artefact id, or nil.
func RunnerFor(id string) Runner {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run
		}
	}
	return nil
}

// balancerFactory builds a fresh balancer per run (balancers carry
// per-run state).
type balancerFactory func(plat *arch.Platform) (kernel.Balancer, error)

// runScenario simulates specs on plat under the factory's balancer for
// the given duration and returns the run statistics.
func runScenario(plat *arch.Platform, bf balancerFactory, specs []workload.ThreadSpec, durNs int64, seed uint64) (*kernel.RunStats, error) {
	cfg := kernel.DefaultConfig()
	cfg.Seed = seed
	return runScenarioWithConfig(plat, bf, specs, durNs, cfg)
}

// runScenarioWithConfig is runScenario with an explicit kernel config.
func runScenarioWithConfig(plat *arch.Platform, bf balancerFactory, specs []workload.ThreadSpec, durNs int64, cfg kernel.Config) (*kernel.RunStats, error) {
	m, err := machine.New(plat)
	if err != nil {
		return nil, err
	}
	b, err := bf(plat)
	if err != nil {
		return nil, err
	}
	k, err := kernel.New(m, b, cfg)
	if err != nil {
		return nil, err
	}
	for i := range specs {
		if _, err := k.Spawn(&specs[i]); err != nil {
			return nil, err
		}
	}
	if err := k.Run(durNs); err != nil {
		return nil, err
	}
	if err := k.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("exp: post-run invariant violation: %w", err)
	}
	return k.Stats(), nil
}

// trainedSmartBalanceFactory trains a predictor for the platform's type
// set once and returns a factory producing fresh controllers.
func trainedSmartBalanceFactory(types []arch.CoreType, seed uint64) (balancerFactory, error) {
	tc := core.DefaultTrainConfig()
	tc.Seed = seed
	pred, err := core.Train(types, tc)
	if err != nil {
		return nil, err
	}
	return func(*arch.Platform) (kernel.Balancer, error) {
		cfg := core.DefaultConfig()
		cfg.Anneal.Seed = seed
		return core.New(pred, cfg)
	}, nil
}

// eeGain runs the same workload under two balancers and returns
// EE(test)/EE(base).
func eeGain(plat *arch.Platform, base, test balancerFactory, mkSpecs func() ([]workload.ThreadSpec, error), durNs int64, seed uint64) (gain, baseEE, testEE float64, err error) {
	specsA, err := mkSpecs()
	if err != nil {
		return 0, 0, 0, err
	}
	sa, err := runScenario(plat, base, specsA, durNs, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	specsB, err := mkSpecs()
	if err != nil {
		return 0, 0, 0, err
	}
	sb, err := runScenario(plat, test, specsB, durNs, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	baseEE = sa.EnergyEfficiency()
	testEE = sb.EnergyEfficiency()
	if baseEE <= 0 {
		return 0, baseEE, testEE, errors.New("exp: baseline achieved zero energy efficiency")
	}
	return testEE / baseEE, baseEE, testEE, nil
}
