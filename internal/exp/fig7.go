package exp

import (
	"fmt"
	"time"

	"smartbalance/internal/arch"
	"smartbalance/internal/core"
	"smartbalance/internal/kernel"
	"smartbalance/internal/tablefmt"
)

// Figure7 regenerates Fig. 7: (a) the per-phase overhead of
// SmartBalance on the quad-core HMP, and (b) the scalability sweep from
// 2 to 128 cores with 4 to 256 threads, timing the real sense, predict,
// and optimize implementations at each scale (migration is modelled,
// see core.MigrationCostNs). Paper headline: overhead below 1% of the
// 60 ms epoch for 2-8 cores.
//
// Unlike the other figures this runner stays serial: it measures real
// host wall-clock per phase, and sharing the CPU with sibling cells on
// the sweep worker pool would inflate every timing it reports.
func Figure7(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	tc := core.DefaultTrainConfig()
	tc.Seed = opts.Seed
	pred, err := core.Train(arch.Table2Types(), tc)
	if err != nil {
		return nil, err
	}
	repeat := 5
	if opts.Quick {
		repeat = 1
	}
	epochNs := kernel.DefaultConfig().EpochNs

	tb := tablefmt.New("Figure 7: SmartBalance per-phase overhead and scalability",
		"cores", "threads", "sense", "predict", "optimize", "migrate*", "total", "% of 60ms epoch")
	scenarios := core.ScalabilityScenarios()
	if opts.Quick {
		scenarios = scenarios[:3]
	}
	var quadFrac, maxFrac float64
	for _, sp := range scenarios {
		pt, err := core.MeasurePhases(pred, sp, repeat, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("F7 %dc/%dt: %w", sp.Cores, sp.Threads, err)
		}
		frac := pt.FractionOfEpoch(epochNs)
		if sp.Cores == 4 {
			quadFrac = frac
		}
		if frac > maxFrac {
			maxFrac = frac
		}
		tb.AddRow(
			fmt.Sprintf("%d", sp.Cores), fmt.Sprintf("%d", sp.Threads),
			fmtDur(pt.Sense), fmtDur(pt.Predict), fmtDur(pt.Optimize), fmtDur(pt.Migrate),
			fmtDur(pt.Total()), fmt.Sprintf("%.3f%%", 100*frac))
	}
	tb.AddNote("migrate* is modelled at %dus per moved thread, 50%% of threads moving (paper's assumption)", core.MigrationCostNs/1000)
	tb.AddNote("paper: overhead negligible (<1%% of the 60ms epoch) for 2-8 cores")
	return &Result{
		ID:       "F7",
		Title:    "Per-phase overhead and scalability",
		Table:    tb,
		Headline: map[string]float64{"quad-core-epoch-fraction": quadFrac, "max-epoch-fraction": maxFrac},
		PaperClaim: "for 2-8 cores the average overhead is negligible w.r.t. the " +
			"60ms epoch (less than 1%)",
	}, nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3)
	default:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	}
}
