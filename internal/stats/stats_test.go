package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Fatalf("Mean = %g, err %v", m, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatal("empty Mean should error")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil || math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean = %g, err %v", g, err)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Fatal("negative sample accepted")
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Fatal("empty GeoMean should error")
	}
}

func TestGeoMeanLEArithmeticMean(t *testing.T) {
	// AM-GM inequality as a property test.
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g, err1 := GeoMean(xs)
		m, err2 := Mean(xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return g <= m+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStdDev(t *testing.T) {
	s, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Sample std dev of this classic set is sqrt(32/7).
	if math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("StdDev = %g", s)
	}
	if s, _ := StdDev([]float64{42}); s != 0 {
		t.Fatal("single-sample std dev should be 0")
	}
	if _, err := StdDev(nil); err != ErrEmpty {
		t.Fatal("empty StdDev should error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("P%g = %g, want %g (err %v)", c.p, got, c.want, err)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("negative percentile accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("percentile >100 accepted")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatal("empty percentile should error")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if m, _ := Min(xs); m != -1 {
		t.Fatalf("Min = %g", m)
	}
	if m, _ := Max(xs); m != 7 {
		t.Fatalf("Max = %g", m)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatal("empty Min should error")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatal("empty Max should error")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.GeoMean <= 0 {
		t.Fatal("GeoMean missing for positive data")
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatal("empty Summarize should error")
	}
}

func TestSummarizeNonPositiveGeoMean(t *testing.T) {
	s, err := Summarize([]float64{-1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.GeoMean != 0 {
		t.Fatal("GeoMean should be 0 for data containing non-positives")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	counts, edges, err := Histogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 5 || len(edges) != 6 {
		t.Fatalf("shape: %d counts, %d edges", len(counts), len(edges))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram loses samples: %d != %d", total, len(xs))
	}
	for _, c := range counts {
		if c != 2 {
			t.Fatalf("uniform data not evenly binned: %v", counts)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	counts, _, err := Histogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 {
		t.Fatalf("constant data should land in bin 0: %v", counts)
	}
	if _, _, err := Histogram(nil, 3); err != ErrEmpty {
		t.Fatal("empty Histogram should error")
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
}

func TestHistogramPreservesCountProperty(t *testing.T) {
	f := func(raw []uint8, nb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		nbins := int(nb%10) + 1
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		counts, _, err := Histogram(xs, nbins)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJainFairness(t *testing.T) {
	j, err := JainFairness([]float64{1, 1, 1, 1})
	if err != nil || math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal shares: %g, %v", j, err)
	}
	j, err = JainFairness([]float64{1, 0, 0, 0})
	if err != nil || math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("one hoarder of four: %g, %v", j, err)
	}
	if _, err := JainFairness(nil); err != ErrEmpty {
		t.Fatal("empty set accepted")
	}
	if _, err := JainFairness([]float64{0, 0}); err == nil {
		t.Fatal("all-zero set accepted")
	}
	if _, err := JainFairness([]float64{1, -1}); err == nil {
		t.Fatal("negative sample accepted")
	}
}

func TestJainFairnessScaleInvariant(t *testing.T) {
	a, _ := JainFairness([]float64{2, 3, 5})
	b, _ := JainFairness([]float64{20, 30, 50})
	if math.Abs(a-b) > 1e-12 {
		t.Fatal("Jain index should be scale invariant")
	}
}
