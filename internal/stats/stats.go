// Package stats provides the small set of descriptive statistics the
// experiment harness reports: means (arithmetic and geometric), standard
// deviation, percentiles, and fixed-width histograms.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or an error for empty input.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// GeoMean returns the geometric mean of xs. All samples must be
// positive; otherwise an error is returned. The paper reports ratio
// improvements ("over 50%"), for which geometric means are the honest
// aggregate.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean of non-positive sample")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// StdDev returns the sample standard deviation (n-1 denominator). A
// single sample yields 0.
func StdDev(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1)), nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Min returns the smallest sample.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest sample.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Summary bundles the descriptive statistics of one sample set.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, Median, Max   float64
	P5, P95            float64
	GeoMean            float64 // 0 when any sample is non-positive
	geoMeanUnavailable bool
}

// Summarize computes a Summary, or an error for empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	var s Summary
	s.N = len(xs)
	s.Mean, _ = Mean(xs)
	s.Std, _ = StdDev(xs)
	s.Min, _ = Min(xs)
	s.Max, _ = Max(xs)
	s.Median, _ = Percentile(xs, 50)
	s.P5, _ = Percentile(xs, 5)
	s.P95, _ = Percentile(xs, 95)
	if g, err := GeoMean(xs); err == nil {
		s.GeoMean = g
	} else {
		s.geoMeanUnavailable = true
	}
	return s, nil
}

// JainFairness returns Jain's fairness index (Σx)²/(n·Σx²) of the
// samples: 1 when all shares are equal, approaching 1/n as one sample
// dominates. Samples must be non-negative; an all-zero set returns an
// error.
func JainFairness(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			return 0, errors.New("stats: negative sample in fairness index")
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 { //sbvet:allow floateq(a sum of squares is exactly zero iff every sample is zero)
		return 0, errors.New("stats: all-zero samples in fairness index")
	}
	return sum * sum / (float64(len(xs)) * sumSq), nil
}

// Histogram counts samples into nbins equal-width bins spanning
// [min, max]. Values exactly at max land in the last bin. It returns the
// counts and the bin edges (nbins+1 values).
func Histogram(xs []float64, nbins int) (counts []int, edges []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrEmpty
	}
	if nbins <= 0 {
		return nil, nil, errors.New("stats: non-positive bin count")
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + width*float64(i)
	}
	edges[nbins] = hi
	if width == 0 { //sbvet:allow floateq(width is exactly zero iff min == max; guards the bin division below)
		counts[0] = len(xs)
		return counts, edges, nil
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, edges, nil
}
