package fixedpt

import (
	"math"
	"testing"
)

// Fuzz targets: the fixed-point primitives must stay within their
// contracts for arbitrary inputs (run with `go test -fuzz=FuzzExpNeg`
// etc.; the seed corpus executes under plain `go test`).

func FuzzExpNeg(f *testing.F) {
	for _, seed := range []int32{0, 1, -1, 65536, 1 << 20, -(1 << 20), 1<<31 - 1, -1 << 31} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw int32) {
		q := Q(raw)
		v := ExpNeg(q)
		if v < 0 || v > One {
			t.Fatalf("ExpNeg(%d) = %d outside [0, One]", raw, v)
		}
		// Reference comparison where the argument is in the useful range.
		x := q.Float()
		if x >= 0 && x <= 6 {
			want := math.Exp(-x)
			got := v.Float()
			if math.Abs(got-want) > 0.04*want+2e-4 {
				t.Fatalf("ExpNeg(%g) = %g, want ~%g", x, got, want)
			}
		}
	})
}

func FuzzSqrt(f *testing.F) {
	for _, seed := range []int32{0, 1, 65536, 1 << 30, 1<<31 - 1, -5} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw int32) {
		q := Q(raw)
		s := Sqrt(q)
		if s < 0 {
			t.Fatalf("Sqrt(%d) negative", raw)
		}
		if q > 0 {
			back := Mul(s, s).Float()
			want := q.Float()
			if math.Abs(back-want) > 0.05*(want+1) {
				t.Fatalf("Sqrt(%g)^2 = %g", want, back)
			}
		}
	})
}

func FuzzArithmeticSaturates(f *testing.F) {
	f.Add(int32(5), int32(7))
	f.Add(int32(1<<31-1), int32(1<<31-1))
	f.Add(int32(-1<<31), int32(1))
	f.Fuzz(func(t *testing.T, a, b int32) {
		qa, qb := Q(a), Q(b)
		for _, v := range []Q{Add(qa, qb), Sub(qa, qb), Mul(qa, qb), Div(qa, qb)} {
			if v > MaxQ || v < MinQ {
				t.Fatalf("result %d escaped the representable range", v)
			}
		}
	})
}
