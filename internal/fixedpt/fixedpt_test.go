package fixedpt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, -0.5, 3.14159, -2.71828, 100.25, -100.25}
	for _, f := range cases {
		got := FromFloat(f).Float()
		if math.Abs(got-f) > 1.0/float64(One) {
			t.Errorf("round trip %g -> %g, err %g", f, got, got-f)
		}
	}
}

func TestFromFloatSaturation(t *testing.T) {
	if FromFloat(1e9) != MaxQ {
		t.Error("large positive did not saturate to MaxQ")
	}
	if FromFloat(-1e9) != MinQ {
		t.Error("large negative did not saturate to MinQ")
	}
}

func TestFromIntRoundTrip(t *testing.T) {
	for _, i := range []int{0, 1, -1, 42, -42, 32767, -32768} {
		if got := FromInt(i).Int(); got != i {
			t.Errorf("FromInt(%d).Int() = %d", i, got)
		}
	}
}

func TestFromIntSaturation(t *testing.T) {
	if FromInt(1<<20) != MaxQ {
		t.Error("FromInt overflow did not saturate")
	}
	if FromInt(-(1 << 20)) != MinQ {
		t.Error("FromInt underflow did not saturate")
	}
}

func TestAddSub(t *testing.T) {
	a := FromFloat(1.5)
	b := FromFloat(2.25)
	if got := Add(a, b).Float(); got != 3.75 {
		t.Errorf("1.5+2.25 = %g", got)
	}
	if got := Sub(a, b).Float(); got != -0.75 {
		t.Errorf("1.5-2.25 = %g", got)
	}
}

func TestAddSaturates(t *testing.T) {
	if Add(MaxQ, One) != MaxQ {
		t.Error("Add overflow did not saturate")
	}
	if Sub(MinQ, One) != MinQ {
		t.Error("Sub underflow did not saturate")
	}
}

func TestMul(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{2, 3, 6},
		{-2, 3, -6},
		{0.5, 0.5, 0.25},
		{1.5, -2, -3},
		{0, 123.456, 0},
	}
	for _, c := range cases {
		got := Mul(FromFloat(c.a), FromFloat(c.b)).Float()
		if math.Abs(got-c.want) > 2.0/float64(One) {
			t.Errorf("%g*%g = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestMulSaturates(t *testing.T) {
	big := FromFloat(30000)
	if Mul(big, big) != MaxQ {
		t.Error("Mul overflow did not saturate")
	}
	if Mul(big, FromFloat(-30000)) != MinQ {
		t.Error("Mul negative overflow did not saturate")
	}
}

func TestDiv(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{6, 3, 2},
		{1, 2, 0.5},
		{-6, 3, -2},
		{3, -2, -1.5},
	}
	for _, c := range cases {
		got := Div(FromFloat(c.a), FromFloat(c.b)).Float()
		if math.Abs(got-c.want) > 2.0/float64(One) {
			t.Errorf("%g/%g = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestDivByZero(t *testing.T) {
	if Div(One, 0) != MaxQ {
		t.Error("1/0 should saturate to MaxQ")
	}
	if Div(-One, 0) != MinQ {
		t.Error("-1/0 should saturate to MinQ")
	}
	if Div(0, 0) != MaxQ {
		t.Error("0/0 should saturate to MaxQ")
	}
}

func TestMulDivProperty(t *testing.T) {
	// (a*b)/b ~= a for moderate values.
	// Keep |a*b| well inside the representable range so saturation does
	// not (correctly) break the identity.
	f := func(ai, bi int16) bool {
		a := FromFloat(float64(ai) / 4096) // |a| <= 8
		b := FromFloat(float64(bi)/256 + 130)
		if b.Float() < 1 {
			b = One
		}
		prod := Mul(a, b)
		back := Div(prod, b)
		return math.Abs(back.Float()-a.Float()) < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpNegAccuracy(t *testing.T) {
	// The annealer only needs a few percent of relative accuracy while the
	// acceptance probability is still meaningfully above zero. Below that
	// (want < ~2.5e-3, i.e. x > ~6) the Q16.16 resolution floor dominates
	// and only absolute accuracy matters.
	worstRel, worstAbs := 0.0, 0.0
	for x := 0.0; x <= 12; x += 0.01 {
		got := ExpNegFloat(x)
		want := math.Exp(-x)
		if want >= 2.5e-3 {
			if rel := math.Abs(got-want) / want; rel > worstRel {
				worstRel = rel
			}
		} else if abs := math.Abs(got - want); abs > worstAbs {
			worstAbs = abs
		}
	}
	if worstRel > 0.04 {
		t.Fatalf("ExpNeg worst-case relative error %.4f > 4%%", worstRel)
	}
	if worstAbs > 2e-4 {
		t.Fatalf("ExpNeg worst-case tail absolute error %.6f > 2e-4", worstAbs)
	}
}

func TestExpNegBoundaries(t *testing.T) {
	if ExpNeg(0) != One {
		t.Error("exp(-0) != 1")
	}
	if ExpNeg(-One) != One {
		t.Error("exp of negative arg should clamp to 1")
	}
	if v := ExpNeg(FromFloat(30)); v != 0 {
		t.Errorf("exp(-30) = %g, want underflow to 0", v.Float())
	}
}

func TestExpNegMonotone(t *testing.T) {
	prev := ExpNeg(0)
	for x := Q(1); x < FromInt(15); x += 997 {
		cur := ExpNeg(x)
		if cur > prev {
			t.Fatalf("ExpNeg not monotone at x=%g: %g > %g", x.Float(), cur.Float(), prev.Float())
		}
		prev = cur
	}
}

func TestSqrt(t *testing.T) {
	cases := []float64{0, 1, 2, 4, 9, 0.25, 100, 1024, 30000}
	for _, f := range cases {
		got := Sqrt(FromFloat(f)).Float()
		want := math.Sqrt(f)
		if math.Abs(got-want) > 0.01*(want+1) {
			t.Errorf("sqrt(%g) = %g, want %g", f, got, want)
		}
	}
}

func TestSqrtNegative(t *testing.T) {
	if Sqrt(FromFloat(-4)) != 0 {
		t.Error("sqrt of negative should return 0")
	}
}

func TestSqrtProperty(t *testing.T) {
	f := func(v uint16) bool {
		q := FromFloat(float64(v) / 4)
		s := Sqrt(q)
		back := Mul(s, s)
		return math.Abs(back.Float()-q.Float()) <= 0.05*(q.Float()+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	lo, hi := FromInt(-2), FromInt(5)
	if Clamp(FromInt(7), lo, hi) != hi {
		t.Error("clamp high failed")
	}
	if Clamp(FromInt(-9), lo, hi) != lo {
		t.Error("clamp low failed")
	}
	if v := FromInt(3); Clamp(v, lo, hi) != v {
		t.Error("clamp identity failed")
	}
}

func BenchmarkExpNeg(b *testing.B) {
	x := FromFloat(2.5)
	var sink Q
	for i := 0; i < b.N; i++ {
		sink ^= ExpNeg(x)
	}
	_ = sink
}

func BenchmarkExpNegFloatStdlib(b *testing.B) {
	// Reference: what the paper avoids in kernel space.
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += math.Exp(-2.5)
	}
	_ = sink
}
