// Package fixedpt implements Q16.16 fixed-point arithmetic and the
// custom exponential approximation used by SmartBalance's run-time
// simulated-annealing optimiser (Algorithm 1 in the paper).
//
// The paper notes that "a straightforward floating-point implementation
// ... may lead to long execution times due to the high cost of computing
// the probabilistic functions", and uses "custom fixed-point
// implementations of rand and e^x that trade-off performance with
// uniformity (rand) and precision (e^x)". This package provides that
// arithmetic: a kernel-friendly (no FPU) representation with a fast
// exp(-x) suitable for the Metropolis acceptance rule.
package fixedpt

// Q is a Q16.16 signed fixed-point number: the integer value v
// represents the real number v / 65536.
type Q int32

// Fixed-point constants.
const (
	// Shift is the number of fractional bits.
	Shift = 16
	// One is the fixed-point representation of 1.0.
	One Q = 1 << Shift
	// Half is the fixed-point representation of 0.5.
	Half Q = 1 << (Shift - 1)
	// MaxQ is the largest representable value (~32767.99998).
	MaxQ Q = 1<<31 - 1
	// MinQ is the most negative representable value (~-32768).
	MinQ Q = -1 << 31
)

// FromFloat converts a float64 to Q16.16, saturating at the
// representable range and rounding to nearest.
func FromFloat(f float64) Q {
	v := f * float64(One)
	switch {
	case v >= float64(MaxQ):
		return MaxQ
	case v <= float64(MinQ):
		return MinQ
	case v >= 0:
		return Q(v + 0.5)
	default:
		return Q(v - 0.5)
	}
}

// FromInt converts an integer to Q16.16, saturating at the representable
// range.
func FromInt(i int) Q {
	if i > int(MaxQ>>Shift) {
		return MaxQ
	}
	if i < int(MinQ>>Shift) {
		return MinQ
	}
	return Q(i) << Shift
}

// Float converts q back to a float64.
func (q Q) Float() float64 { return float64(q) / float64(One) }

// Int returns the integer part of q, truncating toward negative
// infinity (arithmetic shift).
func (q Q) Int() int { return int(q >> Shift) }

// Add returns a+b with saturation.
func Add(a, b Q) Q {
	s := int64(a) + int64(b)
	return saturate(s)
}

// Sub returns a-b with saturation.
func Sub(a, b Q) Q {
	s := int64(a) - int64(b)
	return saturate(s)
}

// Mul returns a*b in Q16.16 with saturation, rounding toward zero.
func Mul(a, b Q) Q {
	p := (int64(a) * int64(b)) >> Shift
	return saturate(p)
}

// Div returns a/b in Q16.16 with saturation. Division by zero saturates
// to MaxQ or MinQ according to the sign of a (and MaxQ for 0/0), which is
// the behaviour the annealer wants: an infinite ratio is "very large".
func Div(a, b Q) Q {
	if b == 0 {
		if a < 0 {
			return MinQ
		}
		return MaxQ
	}
	q := (int64(a) << Shift) / int64(b)
	return saturate(q)
}

func saturate(v int64) Q {
	if v > int64(MaxQ) {
		return MaxQ
	}
	if v < int64(MinQ) {
		return MinQ
	}
	return Q(v)
}

// expFracTable[i] holds exp(-i/16) for i in [0,16) in Q16.16. Combined
// with halving for the integer part this gives exp(-x) with a worst-case
// relative error of about 3% (the error of approximating the residual
// linearly), which is ample for a Metropolis acceptance probability.
var expFracTable = [16]Q{}

func init() {
	// Table of exp(-i/16), i = 0..15, precomputed as integer literals so
	// the package stays float-free at run time in the hot path. Values
	// are round(exp(-i/16) * 65536).
	vals := [16]int32{
		65536, // exp(-0/16)   = 1.00000
		61565, // exp(-1/16)   = 0.93941
		57835, // exp(-2/16)   = 0.88250
		54331, // exp(-3/16)   = 0.82903
		51039, // exp(-4/16)   = 0.77880
		47947, // exp(-5/16)   = 0.73162
		45042, // exp(-6/16)   = 0.68729
		42313, // exp(-7/16)   = 0.64565
		39749, // exp(-8/16)   = 0.60653
		37341, // exp(-9/16)   = 0.56978
		35078, // exp(-10/16)  = 0.53526
		32953, // exp(-11/16)  = 0.50283
		30957, // exp(-12/16)  = 0.47237
		29081, // exp(-13/16)  = 0.44374
		27319, // exp(-14/16)  = 0.41686
		25664, // exp(-15/16)  = 0.39160
	}
	for i, v := range vals {
		expFracTable[i] = Q(v)
	}
}

// ExpNeg returns an approximation of exp(-x) for x >= 0 in Q16.16.
// Negative x is treated as 0 (returns One): the annealer only ever
// evaluates exp of a non-positive exponent. The approximation decomposes
// x = k*ln2 + i/16 + r and computes 2^-k * table[i] * (1 - r). For
// x > ~21 the result underflows to 0.
func ExpNeg(x Q) Q {
	if x <= 0 {
		return One
	}
	const ln2 Q = 45426 // round(ln(2) * 65536)
	// Integer count of ln2 halvings.
	k := 0
	for x >= ln2 {
		x -= ln2
		k++
		if k >= 31 {
			return 0
		}
	}
	// x is now in [0, ln2). Index the 1/16-granular table.
	i := int(x >> (Shift - 4)) // x / (1/16)
	if i > 15 {
		i = 15
	}
	r := x - Q(i)<<(Shift-4) // residual in [0, 1/16)
	// First-order correction: exp(-r) ~= 1 - r for small r.
	v := Mul(expFracTable[i], One-r)
	return v >> uint(k)
}

// ExpNegFloat is a convenience wrapper evaluating exp(-x) for a float
// argument via the fixed-point path; used by tests to quantify the
// approximation error.
func ExpNegFloat(x float64) float64 {
	return ExpNeg(FromFloat(x)).Float()
}

// Sqrt returns the square root of q (q >= 0) in Q16.16 using integer
// Newton iterations. Negative input returns 0. Algorithm 1 applies a
// square root to the perturbation magnitude when deriving move
// distances.
func Sqrt(q Q) Q {
	if q <= 0 {
		return 0
	}
	// sqrt(v / 2^16) * 2^16 == sqrt(v * 2^16) == isqrt(v << 16)
	v := uint64(q) << Shift
	// Initial guess: a power of two >= sqrt(v), so the damped Newton
	// iteration below converges monotonically downward.
	x := uint64(1) << (bits64(v)/2 + 1)
	for i := 0; i < 32; i++ {
		nx := (x + v/x) / 2
		if nx >= x {
			break
		}
		x = nx
	}
	if x > uint64(MaxQ) {
		return MaxQ
	}
	return Q(x)
}

// bits64 returns the position of the highest set bit (0-based); 0 maps
// to 0.
func bits64(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Clamp limits q to [lo, hi].
func Clamp(q, lo, hi Q) Q {
	if q < lo {
		return lo
	}
	if q > hi {
		return hi
	}
	return q
}
