package smartbalance

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark regenerates its artefact
// through the same runner the smartbench tool uses and reports the
// headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Durations are trimmed relative to
// `smartbench -full` so the whole suite completes in minutes; the
// shapes (who wins, by what factor) are unchanged.
//
// The BenchmarkReplicate pair additionally times the sweep engine
// itself: the same seed replication on one worker versus the full
// GOMAXPROCS pool (`smartbench -sweepjson` records the same
// comparison to a JSON file).

import (
	"testing"
)

// benchOpts returns experiment options sized for benchmarking.
func benchOpts() ExperimentOptions {
	o := DefaultExperimentOptions()
	o.DurationNs = 600e6
	o.ThreadCounts = []int{2, 4}
	o.Quick = true
	return o
}

func runArtefact(b *testing.B, id string, metricKeys ...string) {
	b.Helper()
	opts := benchOpts()
	var last *ExperimentResult
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		for _, k := range metricKeys {
			if v, ok := last.Headline[k]; ok {
				b.ReportMetric(v, k)
			}
		}
	}
}

// BenchmarkTable2CoreConfigs regenerates Table 2 (core configuration
// parameters plus the power-model calibration cross-check).
func BenchmarkTable2CoreConfigs(b *testing.B) {
	runArtefact(b, "T2", "calibration-rel-error")
}

// BenchmarkTable3Mixes regenerates Table 3 (the PARSEC mixes).
func BenchmarkTable3Mixes(b *testing.B) {
	runArtefact(b, "T3", "mixes")
}

// BenchmarkTable4Predictor regenerates Table 4 (the trained predictor
// coefficient matrix Θ).
func BenchmarkTable4Predictor(b *testing.B) {
	runArtefact(b, "T4", "worst-pair-train-mape-pct")
}

// BenchmarkFigure4aIMB regenerates Fig. 4(a): energy-efficiency gain
// over vanilla Linux on the interactive microbenchmarks (paper: ~1.50x
// average).
func BenchmarkFigure4aIMB(b *testing.B) {
	runArtefact(b, "F4a", "geomean-gain", "min-gain")
}

// BenchmarkFigure4bPARSEC regenerates Fig. 4(b): energy-efficiency gain
// over vanilla Linux on PARSEC benchmarks and mixes (paper: ~1.52x
// average).
func BenchmarkFigure4bPARSEC(b *testing.B) {
	runArtefact(b, "F4b", "geomean-gain", "min-gain")
}

// BenchmarkFigure5GTS regenerates Fig. 5: normalized energy efficiency
// versus ARM GTS on the octa-core big.LITTLE (paper: >1.20x).
func BenchmarkFigure5GTS(b *testing.B) {
	runArtefact(b, "F5", "geomean-gain-vs-gts")
}

// BenchmarkFigure6Prediction regenerates Fig. 6: performance and power
// prediction error (paper: 4.2% and 5%).
func BenchmarkFigure6Prediction(b *testing.B) {
	runArtefact(b, "F6", "mean-perf-error-pct", "mean-power-error-pct")
}

// BenchmarkFigure7Overhead regenerates Fig. 7: per-phase overhead and
// scalability (paper: <1% of the 60ms epoch for 2-8 cores).
func BenchmarkFigure7Overhead(b *testing.B) {
	runArtefact(b, "F7", "quad-core-epoch-fraction", "max-epoch-fraction")
}

// BenchmarkFigure8Anneal regenerates Fig. 8: iteration budgets and
// distance to the known optimum.
func BenchmarkFigure8Anneal(b *testing.B) {
	runArtefact(b, "F8", "worst-distance-pct")
}

// BenchmarkAblationPredictionVsOracle (A1) measures how much of the
// oracle-matrix energy efficiency prediction-driven SmartBalance
// retains (DESIGN.md ablation: prediction vs sampling).
func BenchmarkAblationPredictionVsOracle(b *testing.B) {
	runArtefact(b, "A1", "geomean-retained")
}

// BenchmarkAblationObjectiveMode (A2) compares the default global
// IPS/W objective with the literal Eq. (11) per-core ratio sum.
func BenchmarkAblationObjectiveMode(b *testing.B) {
	runArtefact(b, "A2", "geomean-global-advantage")
}

// BenchmarkAblationFixedPointSA (A3) quantifies the quality cost of
// Algorithm 1's fixed-point rand/e^x acceptance path.
func BenchmarkAblationFixedPointSA(b *testing.B) {
	runArtefact(b, "A3", "geomean-quality-ratio")
}

// BenchmarkAblationEpochLength (A4) sweeps the sense-predict-balance
// epoch length.
func BenchmarkAblationEpochLength(b *testing.B) {
	runArtefact(b, "A4", "best-relative-ee")
}

// BenchmarkAblationMigrationPenalty (A5) sweeps the cold-cache
// migration cost.
func BenchmarkAblationMigrationPenalty(b *testing.B) {
	runArtefact(b, "A5", "worst-relative-ee")
}

// BenchmarkAblationFeatureSparsity (A6) retrains the predictor with
// counter groups removed (the Sec. 6.4 sparse-sensing question).
func BenchmarkAblationFeatureSparsity(b *testing.B) {
	runArtefact(b, "A6", "full-feature-error-pct")
}

// BenchmarkAblationDVFS (A7) runs SmartBalance on a platform whose
// heterogeneity is purely DVFS operating points (Sec. 3 generality).
func BenchmarkAblationDVFS(b *testing.B) {
	runArtefact(b, "A7", "geomean-gain")
}

// BenchmarkEndToEndQuadHMP measures raw simulation throughput of the
// full stack (machine + kernel + SmartBalance) — simulated nanoseconds
// per host operation, for sizing longer experiments.
func BenchmarkEndToEndQuadHMP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plat := QuadHMP()
		bal, err := TrainSmartBalance(plat.Types, 1)
		if err != nil {
			b.Fatal(err)
		}
		sys, err := NewSystem(plat, bal)
		if err != nil {
			b.Fatal(err)
		}
		specs, err := Mix("Mix1", 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.SpawnAll(specs); err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(200e6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThermal (A8) sweeps the thermal-aware derating
// threshold (peak die temperature vs energy-efficiency cost).
func BenchmarkAblationThermal(b *testing.B) {
	runArtefact(b, "A8", "plain-peak-c", "coolest-peak-c")
}

// BenchmarkAblationBusContention (A9) checks the balancing gains
// survive shared-memory-bus contention (Section 5's platform topology).
func BenchmarkAblationBusContention(b *testing.B) {
	runArtefact(b, "A9", "min-gain-under-contention")
}

// BenchmarkTable1RelatedWork regenerates Table 1 (related-work summary
// with programmatic verification of the implemented rows).
func BenchmarkTable1RelatedWork(b *testing.B) {
	runArtefact(b, "T1", "structural-checks")
}

// BenchmarkAblationObjectiveGoals (A10) compares the energy-efficiency
// and throughput-first optimisation goals (Sec. 4.3).
func BenchmarkAblationObjectiveGoals(b *testing.B) {
	runArtefact(b, "A10", "throughput-gain", "ee-cost-factor")
}

// BenchmarkAblationFairness (A11) measures intra-benchmark fairness
// (Jain's index over worker progress) under vanilla and SmartBalance.
func BenchmarkAblationFairness(b *testing.B) {
	runArtefact(b, "A11", "worst-smart-fairness")
}

// BenchmarkAblationSensorNoise (A12) sweeps power-sensor noise — the
// robustness of a sensing-driven balancer to sensor quality.
func BenchmarkAblationSensorNoise(b *testing.B) {
	runArtefact(b, "A12", "min-gain-under-noise")
}

// BenchmarkAblationFaultRobustness (A13) sweeps injected sensing and
// migration faults from clean to a total counter blackout — the
// graceful-degradation contract of the hardened loop (DESIGN.md §9).
func BenchmarkAblationFaultRobustness(b *testing.B) {
	runArtefact(b, "A13", "gain-at-full-dropout", "min-gain-under-faults")
}

// TestTelemetryDisabledZeroAlloc pins the telemetry layer's
// disabled-cost contract: a system without EnableTelemetry holds a nil
// collector, and the exact per-epoch call sequence the controller and
// kernel adapter issue against it must not allocate. Every attr-built
// span in the hot path is additionally guarded by Enabled(), so the
// variadic slices below are the worst case, not the common one.
func TestTelemetryDisabledZeroAlloc(t *testing.T) {
	var tel *TelemetryCollector
	if tel.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tel.BeginEpoch(1, 60e6)
		tel.Counter("smartbalance_epochs_total").Inc()
		tel.Counter("smartbalance_migrations_total").Add(3)
		tel.Gauge("smartbalance_degraded_mode").Set(0)
		tel.Gauge("smartbalance_epoch_ee").Set(1e9)
		tel.Histogram("smartbalance_epoch_ee_dist", nil).Observe(1e9)
		tel.Span("sense", 60e6, 0)
		tel.Anomaly(60e6, "reason", "detail")
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocates %.1f times per epoch, want 0", allocs)
	}
}

// BenchmarkEpochTelemetryEnabled sizes the enabled-path cost of the
// same per-epoch sequence, for comparison against the zero above.
func BenchmarkEpochTelemetryEnabled(b *testing.B) {
	tel := NewTelemetryCollector(TelemetryConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tel.BeginEpoch(i+1, int64(i)*60e6)
		tel.Counter("smartbalance_epochs_total").Inc()
		tel.Gauge("smartbalance_epoch_ee").Set(1e9)
		tel.Span("sense", int64(i)*60e6, 0)
	}
}

// benchReplicate replicates one artefact over a small seed set with the
// given sweep worker-pool size — the serial/parallel pair below
// measures the engine's wall-clock win while the equivalence tests in
// internal/exp pin the outputs byte-identical.
func benchReplicate(b *testing.B, workers int) {
	b.Helper()
	opts := benchOpts()
	opts.Workers = workers
	seeds := []uint64{1, 2, 3, 4}
	for i := 0; i < b.N; i++ {
		if _, err := ReplicateExperiment("F6", opts, seeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicateSerial replicates F6 on a single sweep worker.
func BenchmarkReplicateSerial(b *testing.B) {
	benchReplicate(b, 1)
}

// BenchmarkReplicateParallel replicates F6 on the full worker pool
// (GOMAXPROCS).
func BenchmarkReplicateParallel(b *testing.B) {
	benchReplicate(b, 0)
}
