// Package smartbalance is a library-grade reproduction of
// "SmartBalance: A Sensing-Driven Linux Load Balancer for Energy
// Efficiency of Heterogeneous MPSoCs" (Sarma et al., DAC 2015).
//
// It bundles, behind one API:
//
//   - a heterogeneous-MPSoC simulation substrate (interval-analysis CPU
//     performance model, calibrated activity-based power model, and a
//     discrete-event CFS scheduling kernel standing in for the paper's
//     Gem5 + McPAT + Linux 2.6 stack);
//   - the SmartBalance closed-loop sense-predict-balance controller
//     (per-thread counter sensing, cross-core-type linear prediction,
//     and fixed-point simulated-annealing allocation, Algorithm 1);
//   - the baseline policies the paper compares against (vanilla Linux
//     load balancing, ARM GTS, Linaro IKS);
//   - PARSEC-like and interactive synthetic workloads (Table 3 mixes,
//     the IMB grid); and
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// # Quick start
//
//	plat := smartbalance.QuadHMP()
//	bal, _ := smartbalance.TrainSmartBalance(plat.Types, 1)
//	sys, _ := smartbalance.NewSystem(plat, bal)
//	specs, _ := smartbalance.Mix("Mix1", 4, 1)
//	_ = sys.SpawnAll(specs)
//	_ = sys.Run(2 * time.Second)
//	fmt.Printf("%.3g IPS/W\n", sys.Stats().EnergyEfficiency())
package smartbalance

import (
	"errors"
	"fmt"
	"io"
	"time"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/core"
	"smartbalance/internal/exp"
	"smartbalance/internal/fault"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/powermodel"
	"smartbalance/internal/telemetry"
	"smartbalance/internal/thermal"
	"smartbalance/internal/trace"
	"smartbalance/internal/workload"
)

// Re-exported vocabulary types. The facade aliases the internal types
// so applications never import internal packages directly.
type (
	// Platform is a heterogeneous MPSoC description.
	Platform = arch.Platform
	// CoreType is one architecturally differentiated core configuration
	// (a Table 2 column).
	CoreType = arch.CoreType
	// CoreID identifies a physical core.
	CoreID = arch.CoreID
	// ThreadSpec is a synthetic workload thread description.
	ThreadSpec = workload.ThreadSpec
	// Phase is one execution phase of a thread.
	Phase = workload.Phase
	// Balancer is a pluggable load-balancing policy.
	Balancer = kernel.Balancer
	// ThreadID identifies a spawned thread.
	ThreadID = kernel.ThreadID
	// RunStats is the observable outcome of a simulation run.
	RunStats = kernel.RunStats
	// KernelConfig tunes the scheduling substrate (CFS latency, epoch
	// length, migration penalty, sensor noise).
	KernelConfig = kernel.Config
	// EventQueueKind selects the kernel's event-queue implementation.
	EventQueueKind = kernel.EventQueueKind
	// SmartBalanceController is the paper's contribution: the
	// sense-predict-balance closed-loop balancer.
	SmartBalanceController = core.SmartBalance
	// Predictor is the trained cross-core performance/power predictor.
	Predictor = core.Predictor
	// ExperimentOptions configures paper-experiment regeneration.
	ExperimentOptions = exp.Options
	// ExperimentResult is one regenerated table/figure.
	ExperimentResult = exp.Result
	// Level is an IMB throughput/interactivity level (Low/Medium/High).
	Level = workload.Level
)

// IMB levels, re-exported.
const (
	Low    = workload.Low
	Medium = workload.Medium
	High   = workload.High
)

// Event-queue kinds, re-exported. Both drain the identical (at, seq)
// total order — equal-seed runs are byte-identical under either.
const (
	// EventQueueCalendar is the O(1)-amortized calendar queue (default).
	EventQueueCalendar = kernel.EventQueueCalendar
	// EventQueueHeap is the original binary min-heap.
	EventQueueHeap = kernel.EventQueueHeap
)

// Platform constructors.

// QuadHMP returns the paper's 4-type heterogeneous platform (one Huge,
// Big, Medium, and Small core; Table 2).
func QuadHMP() *Platform { return arch.QuadHMP() }

// OctaBigLittle returns the octa-core big.LITTLE platform of the GTS
// comparison (Section 6.1).
func OctaBigLittle() *Platform { return arch.OctaBigLittle() }

// ScalingHMP returns an n-core platform tiling the Table 2 core types,
// as used in the Fig. 7 scalability sweep.
func ScalingHMP(n int) (*Platform, error) { return arch.ScalingHMP(n) }

// Table2Types returns the four Table 2 core types.
func Table2Types() []CoreType { return arch.Table2Types() }

// BigLittleTypes returns the two big.LITTLE core types.
func BigLittleTypes() []CoreType { return arch.BigLittleTypes() }

// OperatingPoint is one DVFS voltage/frequency pair.
type OperatingPoint = arch.OperatingPoint

// DVFSPlatform builds a platform whose heterogeneity is purely DVFS:
// coresPerPoint cores of the same micro-architecture at each operating
// point, each point treated as a distinct core type (Section 3).
func DVFSPlatform(base CoreType, points []OperatingPoint, coresPerPoint int) (*Platform, error) {
	return arch.DVFSPlatform(base, points, coresPerPoint, powermodel.LeakageFraction)
}

// Workload constructors.

// Benchmarks lists the available PARSEC-like benchmark names.
func Benchmarks() []string { return workload.Benchmarks() }

// Benchmark materialises nthreads worker threads of a named benchmark.
func Benchmark(name string, nthreads int, seed uint64) ([]ThreadSpec, error) {
	return workload.Benchmark(name, nthreads, seed)
}

// MixNames lists the Table 3 mix identifiers.
func MixNames() []string { return workload.MixNames() }

// Mix materialises a Table 3 benchmark mix with nthreads workers per
// constituent benchmark.
func Mix(name string, nthreads int, seed uint64) ([]ThreadSpec, error) {
	return workload.Mix(name, nthreads, seed)
}

// IMB materialises an interactive microbenchmark configuration.
func IMB(throughput, interactivity Level, nthreads int, seed uint64) ([]ThreadSpec, error) {
	return workload.IMB(throughput, interactivity, nthreads, seed)
}

// WorkloadBuilder assembles custom thread specs from phase archetypes
// (Compute/Memory/Branchy/Custom, with Sleep for interactivity).
type WorkloadBuilder = workload.Builder

// NewWorkload starts a custom workload definition.
func NewWorkload(name string) *WorkloadBuilder { return workload.NewBuilder(name) }

// Balancer constructors.

// NewVanillaBalancer returns the stock Linux load balancer baseline.
func NewVanillaBalancer() Balancer { return balancer.Vanilla{} }

// NewGTSBalancer returns ARM's Global Task Scheduling policy for a
// two-type big.LITTLE platform.
func NewGTSBalancer(p *Platform) (Balancer, error) { return balancer.NewGTS(p) }

// NewIKSBalancer returns the Linaro In-Kernel Switcher baseline.
func NewIKSBalancer(p *Platform) (Balancer, error) { return balancer.NewIKS(p) }

// NewPinnedBalancer returns a no-op balancer (fork placement only).
func NewPinnedBalancer() Balancer { return balancer.Pinned{} }

// TrainPredictor runs the offline profiling step and fits the
// cross-core-type coefficient matrix Θ (Eq. 8, Table 4) and the
// per-type power fits (Eq. 9) for the given core-type set.
func TrainPredictor(types []CoreType, seed uint64) (*Predictor, error) {
	cfg := core.DefaultTrainConfig()
	cfg.Seed = seed
	return core.Train(types, cfg)
}

// TrainSmartBalance trains a predictor and wraps it in a SmartBalance
// controller with default Algorithm 1 parameters and the paper's
// energy-efficiency goal.
func TrainSmartBalance(types []CoreType, seed uint64) (*SmartBalanceController, error) {
	pred, err := TrainPredictor(types, seed)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Anneal.Seed = seed
	return core.New(pred, cfg)
}

// SmartBalanceConfig tunes the controller: Algorithm 1 parameters,
// per-core weights ω_j, and the optimisation goal.
type SmartBalanceConfig = core.Config

// ObjectiveMode selects the optimisation goal (Sec. 4.3).
type ObjectiveMode = core.ObjectiveMode

// Optimisation goals.
const (
	// GoalEnergyEfficiency maximises overall IPS/Watt (the paper's goal).
	GoalEnergyEfficiency = core.GlobalRatio
	// GoalLiteralEq11 maximises the literal Eq. (11) per-core ratio sum
	// (ablation; see DESIGN.md §4).
	GoalLiteralEq11 = core.PerCoreRatioSum
	// GoalMaxThroughput maximises aggregate IPS, ignoring power.
	GoalMaxThroughput = core.MaxThroughput
)

// DefaultSmartBalanceConfig returns the standard controller settings.
func DefaultSmartBalanceConfig() SmartBalanceConfig { return core.DefaultConfig() }

// Clock is the controller's time source for overhead measurement.
// Simulation packages never read host time directly (the sbvet
// wallclock invariant); real time enters only through RealClock,
// injected at the application boundary.
type Clock = core.Clock

// RealClock returns the host-time Clock for measuring actual controller
// overhead (Fig. 7). Use it in binaries; simulations and tests should
// prefer NewFakeClock for reproducible output.
func RealClock() Clock { return core.RealClock() }

// NewFakeClock returns a deterministic Clock advancing by step per
// reading, making overhead figures a pure function of the run.
func NewFakeClock(step time.Duration) Clock { return core.NewFakeClock(step) }

// NewSmartBalanceController builds a controller from an already-trained
// predictor with explicit configuration.
func NewSmartBalanceController(pred *Predictor, cfg SmartBalanceConfig) (*SmartBalanceController, error) {
	return core.New(pred, cfg)
}

// DefaultKernelConfig returns the scheduling-substrate defaults used in
// the paper's experiments (12 ms CFS latency, 60 ms epoch).
func DefaultKernelConfig() KernelConfig { return kernel.DefaultConfig() }

// Fault injection (DESIGN.md §9): deterministic sensing and migration
// faults, applied to what the balancer observes — never to the
// simulation's ground truth.

// FaultPlan describes a deterministic fault-injection campaign:
// per-thread-epoch probabilities of dropped, stale, corrupt, and
// power-faulted sensor readings, plus a per-call migration-refusal
// rate. The zero plan injects nothing.
type FaultPlan = fault.Plan

// FaultInjector perturbs the balancer's view of the machine according
// to a FaultPlan; install it via KernelConfig.Faults. Deterministic per
// (plan, seed).
type FaultInjector = fault.Injector

// FaultStats counts the faults an injector has materialised.
type FaultStats = fault.Stats

// ParseFaultPlan parses the canonical fault-plan spec grammar, e.g.
// "drop=0.3;stale=0.1;migfail=0.2". "", "none", and "off" all mean the
// zero plan.
func ParseFaultPlan(spec string) (FaultPlan, error) { return fault.ParsePlan(spec) }

// NewFaultInjector builds a deterministic injector for the plan. seed
// drives the fault stream when the plan does not pin its own Seed;
// derive it from the run seed so one knob reproduces the whole run.
func NewFaultInjector(plan FaultPlan, seed uint64) (*FaultInjector, error) {
	return fault.New(plan, seed)
}

// ThermalTracker estimates per-core die temperature from the power
// sensors with a first-order RC model.
type ThermalTracker = thermal.Tracker

// ThermalAwareBalancer wraps SmartBalance with temperature feedback:
// hot cores' objective weights ω_j are derated so the optimiser steers
// work away from them (the Eq. 11 weight knob, applied to the paper's
// Sec. 6.4 thermal-tracking outlook).
type ThermalAwareBalancer = thermal.Aware

// NewThermalSmartBalance trains a SmartBalance controller and wraps it
// with thermal awareness for the platform, returning the balancer and
// its temperature tracker.
func NewThermalSmartBalance(p *Platform, seed uint64) (*ThermalAwareBalancer, *ThermalTracker, error) {
	inner, err := TrainSmartBalance(p.Types, seed)
	if err != nil {
		return nil, nil, err
	}
	params, err := thermal.FromPlatform(p)
	if err != nil {
		return nil, nil, err
	}
	tr, err := thermal.NewTracker(params)
	if err != nil {
		return nil, nil, err
	}
	aw, err := thermal.NewAware(inner, tr)
	if err != nil {
		return nil, nil, err
	}
	return aw, tr, nil
}

// System is a ready-to-run simulated machine: platform + execution
// models + scheduling kernel + balancing policy.
type System struct {
	k    *kernel.Kernel
	plat *Platform

	// rec is the recorder the last EnableTrace call installed; tel and
	// telObs track the telemetry collector and its kernel observer slot
	// (-1 when none). Both observers compose on the kernel's fan-out.
	rec    *trace.Recorder
	tel    *telemetry.Collector
	telObs int
}

// NewSystem builds a System over the platform with the given balancer
// and the default kernel configuration.
func NewSystem(p *Platform, b Balancer) (*System, error) {
	return NewSystemWithConfig(p, b, kernel.DefaultConfig())
}

// NewSystemWithConfig builds a System with an explicit kernel
// configuration.
func NewSystemWithConfig(p *Platform, b Balancer, cfg KernelConfig) (*System, error) {
	return NewSystemFull(p, b, cfg, MachineOptions{})
}

// MachineOptions tunes the execution substrate (e.g. the shared-
// memory-bus contention model).
type MachineOptions = machine.Options

// NewSystemFull builds a System with explicit kernel configuration and
// machine options.
func NewSystemFull(p *Platform, b Balancer, cfg KernelConfig, mopts MachineOptions) (*System, error) {
	if p == nil {
		return nil, errors.New("smartbalance: nil platform")
	}
	m, err := machine.NewWithOptions(p, mopts)
	if err != nil {
		return nil, err
	}
	k, err := kernel.New(m, b, cfg)
	if err != nil {
		return nil, err
	}
	return &System{k: k, plat: p, telObs: -1}, nil
}

// Platform returns the system's platform.
func (s *System) Platform() *Platform { return s.plat }

// Kernel exposes the underlying scheduling kernel for advanced use
// (custom balancers, invariant checks).
func (s *System) Kernel() *kernel.Kernel { return s.k }

// Spawn creates one thread.
func (s *System) Spawn(spec *ThreadSpec) (ThreadID, error) { return s.k.Spawn(spec) }

// SetAffinity restricts a thread to the given cores (the
// sched_setaffinity analogue); balancers — including SmartBalance's
// optimiser — honour the mask.
func (s *System) SetAffinity(id ThreadID, cores []CoreID) error {
	return s.k.SetAffinity(id, cores)
}

// ClearAffinity removes a thread's affinity restriction.
func (s *System) ClearAffinity(id ThreadID) error { return s.k.ClearAffinity(id) }

// SpawnAll creates every thread of a workload.
func (s *System) SpawnAll(specs []ThreadSpec) error {
	for i := range specs {
		if _, err := s.k.Spawn(&specs[i]); err != nil {
			return fmt.Errorf("smartbalance: spawn %q: %w", specs[i].Name, err)
		}
	}
	return nil
}

// Run advances the simulation by d of simulated time. It may be called
// repeatedly to extend a run.
func (s *System) Run(d time.Duration) error {
	if d <= 0 {
		return errors.New("smartbalance: non-positive duration")
	}
	return s.k.Run(s.k.Now() + d.Nanoseconds())
}

// Stats snapshots the cumulative run statistics.
func (s *System) Stats() *RunStats { return s.k.Stats() }

// TraceRecorder records scheduling events (context switches,
// migrations, sleeps/wakes, epochs) for inspection.
type TraceRecorder = trace.Recorder

// EnableTrace attaches a scheduling-trace recorder retaining up to
// limit raw events (aggregate statistics cover the whole run). Call
// before Run. Each call makes a fresh recorder bound to this system's
// kernel alone (recorders are one-per-kernel; see internal/trace), and
// replaces any recorder a previous call installed.
func (s *System) EnableTrace(limit int) (*TraceRecorder, error) {
	rec, err := trace.NewRecorder(limit)
	if err != nil {
		return nil, err
	}
	if s.rec != nil {
		s.rec.Detach()
	}
	if err := rec.Attach(s.k); err != nil {
		return nil, err
	}
	s.rec = rec
	return rec, nil
}

// Telemetry collection (DESIGN.md §10): deterministic spans, metrics,
// and flight-recorder dumps for the whole sense-predict-balance loop.

// TelemetryCollector accumulates one run's telemetry; export it with
// WriteTelemetryJSONL and friends, or inspect it with cmd/sbtrace.
type TelemetryCollector = telemetry.Collector

// TelemetryConfig tunes the collector (flight-recorder window, dump
// cap, history bound); the zero value selects the defaults.
type TelemetryConfig = telemetry.Config

// TelemetryTrace is the export-ready snapshot of a collector.
type TelemetryTrace = telemetry.Trace

// NewTelemetryCollector builds a standalone collector, for callers
// that aggregate telemetry outside a System (the way sbsweep merges a
// whole sweep into one trace). Systems use EnableTelemetry instead.
func NewTelemetryCollector(cfg TelemetryConfig) *TelemetryCollector {
	return telemetry.New(cfg)
}

// EnableTelemetry attaches a telemetry collector: kernel scheduling
// events feed event/instruction counters and epoch rotation, and a
// SmartBalance controller (bare or thermally wrapped) additionally
// reports per-phase spans, health gauges, and anomaly triggers. Call
// before Run. Repeated calls replace the previous collector; the
// collector composes with EnableTrace — both observe the same kernel.
func (s *System) EnableTelemetry(cfg TelemetryConfig) *TelemetryCollector {
	c := telemetry.New(cfg)
	c.SetMeta("balancer", s.k.Balancer().Name())
	c.SetMeta("cores", fmt.Sprintf("%d", s.plat.NumCores()))
	if s.telObs >= 0 {
		s.k.RemoveObserver(s.telObs)
	}
	s.telObs = s.k.AddObserver(telemetry.KernelObserver(c))
	if sink, ok := s.k.Balancer().(interface {
		SetTelemetry(*telemetry.Collector)
	}); ok {
		sink.SetTelemetry(c)
	}
	s.tel = c
	return c
}

// Telemetry returns the collector installed by EnableTelemetry, or nil
// (the zero-cost disabled collector) when telemetry is off.
func (s *System) Telemetry() *TelemetryCollector { return s.tel }

// WriteTelemetryJSONL renders a telemetry trace in the canonical JSONL
// interchange format (byte-identical across equal runs).
func WriteTelemetryJSONL(w io.Writer, tr *TelemetryTrace) error {
	return telemetry.WriteJSONL(w, tr)
}

// WriteTelemetryChrome renders a telemetry trace in Chrome trace-event
// format for chrome://tracing or Perfetto.
func WriteTelemetryChrome(w io.Writer, tr *TelemetryTrace) error {
	return telemetry.WriteChrome(w, tr)
}

// WriteTelemetryProm renders a telemetry trace's metrics in the
// Prometheus text exposition format.
func WriteTelemetryProm(w io.Writer, tr *TelemetryTrace) error {
	return telemetry.WriteProm(w, tr)
}

// ReadTelemetryJSONL parses a canonical JSONL telemetry export.
func ReadTelemetryJSONL(r io.Reader) (*TelemetryTrace, error) {
	return telemetry.ReadJSONL(r)
}

// TelemetryDivergence localises the first difference between two
// telemetry traces.
type TelemetryDivergence = telemetry.Divergence

// FirstTelemetryDivergence compares two telemetry traces and returns
// the first divergence (epoch-first), or nil when identical — the
// primitive behind `sbtrace diff`.
func FirstTelemetryDivergence(a, b *TelemetryTrace) *TelemetryDivergence {
	return telemetry.FirstDivergence(a, b)
}

// Experiment regeneration.

// DefaultExperimentOptions returns the standard experiment settings.
func DefaultExperimentOptions() ExperimentOptions { return exp.DefaultOptions() }

// ExperimentIDs lists the regenerable artefacts in paper order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range exp.Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// RunExperiment regenerates one paper table/figure by id (T2..T4,
// F4a..F8) or ablation (A1..A14).
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentResult, error) {
	r := exp.RunnerFor(id)
	if r == nil {
		return nil, fmt.Errorf("smartbalance: unknown experiment %q (known: %v)", id, ExperimentIDs())
	}
	return r(opts)
}

// ReplicateExperiment runs an artefact across several seeds and
// aggregates its headline metrics (mean/std/min/max) — the replication
// study behind any single-seed number.
func ReplicateExperiment(id string, opts ExperimentOptions, seeds []uint64) (*ExperimentResult, error) {
	return exp.Replicate(id, opts, seeds)
}

// WriteReport renders regenerated artefacts as a Markdown digest
// (paper claim, headline metrics, and full table per artefact).
func WriteReport(w io.Writer, results []*ExperimentResult, opts ExperimentOptions) error {
	return exp.WriteReport(w, results, opts)
}
