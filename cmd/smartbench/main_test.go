package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("2,4,8")
	if err != nil || len(got) != 3 || got[0] != 2 || got[2] != 8 {
		t.Fatalf("parseInts: %v, %v", got, err)
	}
	got, err = parseInts(" 1 , 2 ")
	if err != nil || len(got) != 2 {
		t.Fatalf("whitespace: %v, %v", got, err)
	}
	if _, err := parseInts("2,x"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := parseInts(""); err == nil {
		t.Fatal("empty accepted")
	}
}
