// Command smartbench regenerates the tables and figures of the
// SmartBalance paper's evaluation and prints them as text tables
// (optionally also CSV files).
//
// Usage:
//
//	smartbench                      # run every artefact at default size
//	smartbench -run F4b,F5          # run a subset
//	smartbench -quick               # trimmed workloads (seconds, not minutes)
//	smartbench -dur 2000 -threads 2,4,8
//	smartbench -csv out/            # also write one CSV per artefact
//	smartbench -sweepjson BENCH_sweep.json   # serial-vs-parallel sweep timing
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"smartbalance"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated artefact ids (T2,T3,T4,F4a,F4b,F5,F6,F7,F8) or 'all'")
		quick   = flag.Bool("quick", false, "trim workload sets for a fast smoke run")
		durMs   = flag.Int64("dur", 1200, "simulated duration per scenario in milliseconds")
		threads = flag.String("threads", "2,4,8", "comma-separated thread counts per benchmark")
		seed    = flag.Uint64("seed", 1, "experiment seed")
		csvDir  = flag.String("csv", "", "directory to write per-artefact CSV files (optional)")
		report  = flag.String("report", "", "write a Markdown paper-vs-measured digest to this file (optional)")
		list    = flag.Bool("list", false, "list the regenerable artefacts and exit")
		seeds   = flag.Int("seeds", 0, "replicate each artefact over N seeds and report mean/std instead of one run")
		workers = flag.Int("workers", 0, "sweep-engine worker pool size (<= 0 selects GOMAXPROCS)")
		swJSON  = flag.String("sweepjson", "", "time a serial-vs-parallel replication sweep, write the JSON record to this file, and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range smartbalance.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	opts := smartbalance.DefaultExperimentOptions()
	opts.Quick = *quick
	opts.Seed = *seed
	opts.DurationNs = *durMs * 1e6
	opts.Workers = *workers
	tcs, err := parseInts(*threads)
	if err != nil {
		fatalf("bad -threads: %v", err)
	}
	opts.ThreadCounts = tcs

	if *swJSON != "" {
		n := *seeds
		if n < 2 {
			n = 8
		}
		id := "F6"
		if *run != "all" && !strings.Contains(*run, ",") {
			id = strings.TrimSpace(*run)
		}
		if err := emitSweepJSON(*swJSON, id, opts, *seed, n); err != nil {
			fatalf("sweepjson: %v", err)
		}
		return
	}

	ids := smartbalance.ExperimentIDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	known := map[string]bool{}
	for _, id := range smartbalance.ExperimentIDs() {
		known[id] = true
	}
	for _, id := range ids {
		if !known[strings.TrimSpace(id)] {
			fatalf("unknown artefact %q; known: %s", id, strings.Join(smartbalance.ExperimentIDs(), ","))
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("csv dir: %v", err)
		}
	}

	var collected []*smartbalance.ExperimentResult
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		var res *smartbalance.ExperimentResult
		var err error
		if *seeds > 1 {
			seedList := make([]uint64, *seeds)
			for i := range seedList {
				seedList[i] = *seed + uint64(i)
			}
			res, err = smartbalance.ReplicateExperiment(id, opts, seedList)
		} else {
			res, err = smartbalance.RunExperiment(id, opts)
		}
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		collected = append(collected, res)
		fmt.Printf("\n")
		if err := res.Table.Render(os.Stdout); err != nil {
			fatalf("%s: render: %v", id, err)
		}
		if res.Bars != nil {
			fmt.Println()
			if err := res.Bars.Render(os.Stdout, 40); err != nil {
				fatalf("%s: bars: %v", id, err)
			}
		}
		fmt.Printf("  paper claim: %s\n", res.PaperClaim)
		keys := make([]string, 0, len(res.Headline))
		for k := range res.Headline {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  headline %-28s %.4g\n", k+":", res.Headline[k])
		}
		fmt.Printf("  (regenerated in %v)\n", time.Since(start).Round(time.Millisecond))

		if *csvDir != "" {
			path := filepath.Join(*csvDir, id+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatalf("%s: %v", id, err)
			}
			if err := res.Table.RenderCSV(f); err != nil {
				f.Close()
				fatalf("%s: csv: %v", id, err)
			}
			if err := f.Close(); err != nil {
				fatalf("%s: csv close: %v", id, err)
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fatalf("report: %v", err)
		}
		if err := smartbalance.WriteReport(f, collected, opts); err != nil {
			f.Close()
			fatalf("report: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("report close: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *report)
	}
}

// sweepRecord is the BENCH_sweep.json schema: the serial-vs-parallel
// wall time of one replication sweep, plus the byte-identity verdict.
type sweepRecord struct {
	Artefact   string  `json:"artefact"`
	Seeds      int     `json:"seeds"`
	Workers    int     `json:"workers"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"identical"`
}

// emitSweepJSON replicates one artefact over n seeds twice — once on a
// single worker, once on the full pool — verifies the rendered tables
// are byte-identical (the sweep engine's determinism contract), and
// writes the timing record. Wall time is read here, at the binary
// boundary, and never influences the results themselves.
func emitSweepJSON(path, id string, opts smartbalance.ExperimentOptions, seed uint64, n int) error {
	seedList := make([]uint64, n)
	for i := range seedList {
		seedList[i] = seed + uint64(i)
	}
	render := func(workers int) ([]byte, time.Duration, error) {
		o := opts
		o.Workers = workers
		t0 := time.Now()
		res, err := smartbalance.ReplicateExperiment(id, o, seedList)
		wall := time.Since(t0)
		if err != nil {
			return nil, 0, err
		}
		var buf bytes.Buffer
		if err := res.Table.Render(&buf); err != nil {
			return nil, 0, err
		}
		return buf.Bytes(), wall, nil
	}
	serialOut, serialWall, err := render(1)
	if err != nil {
		return fmt.Errorf("serial sweep: %w", err)
	}
	parallelOut, parallelWall, err := render(0)
	if err != nil {
		return fmt.Errorf("parallel sweep: %w", err)
	}
	rec := sweepRecord{
		Artefact:   id,
		Seeds:      n,
		Workers:    runtime.GOMAXPROCS(0),
		SerialNs:   serialWall.Nanoseconds(),
		ParallelNs: parallelWall.Nanoseconds(),
		Speedup:    float64(serialWall) / float64(parallelWall),
		Identical:  bytes.Equal(serialOut, parallelOut),
	}
	if !rec.Identical {
		return fmt.Errorf("parallel replication of %s diverged from serial — determinism contract violated", id)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sweep %s over %d seeds: serial %v, parallel %v on %d procs (%.2fx); wrote %s\n",
		id, n, serialWall.Round(time.Millisecond), parallelWall.Round(time.Millisecond),
		rec.Workers, rec.Speedup, path)
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "smartbench: "+format+"\n", args...)
	os.Exit(1)
}
