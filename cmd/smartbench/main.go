// Command smartbench regenerates the tables and figures of the
// SmartBalance paper's evaluation and prints them as text tables
// (optionally also CSV files).
//
// Usage:
//
//	smartbench                      # run every artefact at default size
//	smartbench -run F4b,F5          # run a subset
//	smartbench -quick               # trimmed workloads (seconds, not minutes)
//	smartbench -dur 2000 -threads 2,4,8
//	smartbench -csv out/            # also write one CSV per artefact
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"smartbalance"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated artefact ids (T2,T3,T4,F4a,F4b,F5,F6,F7,F8) or 'all'")
		quick   = flag.Bool("quick", false, "trim workload sets for a fast smoke run")
		durMs   = flag.Int64("dur", 1200, "simulated duration per scenario in milliseconds")
		threads = flag.String("threads", "2,4,8", "comma-separated thread counts per benchmark")
		seed    = flag.Uint64("seed", 1, "experiment seed")
		csvDir  = flag.String("csv", "", "directory to write per-artefact CSV files (optional)")
		report  = flag.String("report", "", "write a Markdown paper-vs-measured digest to this file (optional)")
		list    = flag.Bool("list", false, "list the regenerable artefacts and exit")
		seeds   = flag.Int("seeds", 0, "replicate each artefact over N seeds and report mean/std instead of one run")
	)
	flag.Parse()

	if *list {
		for _, id := range smartbalance.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	opts := smartbalance.DefaultExperimentOptions()
	opts.Quick = *quick
	opts.Seed = *seed
	opts.DurationNs = *durMs * 1e6
	tcs, err := parseInts(*threads)
	if err != nil {
		fatalf("bad -threads: %v", err)
	}
	opts.ThreadCounts = tcs

	ids := smartbalance.ExperimentIDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	known := map[string]bool{}
	for _, id := range smartbalance.ExperimentIDs() {
		known[id] = true
	}
	for _, id := range ids {
		if !known[strings.TrimSpace(id)] {
			fatalf("unknown artefact %q; known: %s", id, strings.Join(smartbalance.ExperimentIDs(), ","))
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("csv dir: %v", err)
		}
	}

	var collected []*smartbalance.ExperimentResult
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		var res *smartbalance.ExperimentResult
		var err error
		if *seeds > 1 {
			seedList := make([]uint64, *seeds)
			for i := range seedList {
				seedList[i] = *seed + uint64(i)
			}
			res, err = smartbalance.ReplicateExperiment(id, opts, seedList)
		} else {
			res, err = smartbalance.RunExperiment(id, opts)
		}
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		collected = append(collected, res)
		fmt.Printf("\n")
		if err := res.Table.Render(os.Stdout); err != nil {
			fatalf("%s: render: %v", id, err)
		}
		if res.Bars != nil {
			fmt.Println()
			if err := res.Bars.Render(os.Stdout, 40); err != nil {
				fatalf("%s: bars: %v", id, err)
			}
		}
		fmt.Printf("  paper claim: %s\n", res.PaperClaim)
		keys := make([]string, 0, len(res.Headline))
		for k := range res.Headline {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  headline %-28s %.4g\n", k+":", res.Headline[k])
		}
		fmt.Printf("  (regenerated in %v)\n", time.Since(start).Round(time.Millisecond))

		if *csvDir != "" {
			path := filepath.Join(*csvDir, id+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatalf("%s: %v", id, err)
			}
			if err := res.Table.RenderCSV(f); err != nil {
				f.Close()
				fatalf("%s: csv: %v", id, err)
			}
			if err := f.Close(); err != nil {
				fatalf("%s: csv close: %v", id, err)
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fatalf("report: %v", err)
		}
		if err := smartbalance.WriteReport(f, collected, opts); err != nil {
			f.Close()
			fatalf("report: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("report close: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *report)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "smartbench: "+format+"\n", args...)
	os.Exit(1)
}
