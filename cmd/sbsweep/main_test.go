package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitList = %v", got)
	}
	if got := splitList(""); len(got) != 0 {
		t.Fatalf("empty input gave %v", got)
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("2,4,8")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	for _, bad := range []string{"x", "2,4x", "1.5"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("counts %q accepted", bad)
		}
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("1,5,10-13")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 5, 10, 11, 12, 13}
	if len(got) != len(want) {
		t.Fatalf("parseSeeds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseSeeds = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"x", "3-1", "1-x", "-4", "0-2000000"} {
		if _, err := parseSeeds(bad); err == nil {
			t.Errorf("seeds %q accepted", bad)
		}
	}
}

// TestRunColdWarmIdentical drives the full binary flow twice against
// one cache directory: the warm rerun must be served entirely from the
// cache and print byte-identical canonical output.
func TestRunColdWarmIdentical(t *testing.T) {
	cacheDir := t.TempDir()
	args := []string{
		"-platforms", "quad", "-balancers", "vanilla,pinned",
		"-workloads", "Mix1", "-threads", "2", "-seeds", "1-2",
		"-dur", "30", "-cache", cacheDir, "-json",
	}
	var out1, err1, out2, err2 bytes.Buffer
	if code := run(args, &out1, &err1); code != 0 {
		t.Fatalf("cold run exited %d\n%s", code, err1.String())
	}
	warm := append(append([]string{}, args...), "-expect-cached", "-times", "-progress")
	if code := run(warm, &out2, &err2); code != 0 {
		t.Fatalf("warm run exited %d\n%s", code, err2.String())
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatalf("warm stdout differs from cold:\n--- cold\n%s\n--- warm\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(err2.String(), "cached=4") {
		t.Fatalf("warm run not fully cached:\n%s", err2.String())
	}
}

// TestRunExpectCachedCold: a cold run under -expect-cached exits 2.
func TestRunExpectCachedCold(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-balancers", "vanilla", "-workloads", "Mix1", "-threads", "2",
		"-dur", "20", "-cache", t.TempDir(), "-expect-cached",
	}, &out, &errw)
	if code != 2 {
		t.Fatalf("exit %d, want 2\n%s", code, errw.String())
	}
}

// TestRunScenarioFailureExitsOne: a failing scenario (gts on the
// four-type quad platform) is an error row plus exit 1, not an abort.
func TestRunScenarioFailureExitsOne(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-balancers", "gts,vanilla", "-workloads", "Mix1", "-threads", "2",
		"-dur", "20",
	}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, errw.String())
	}
	if !strings.Contains(out.String(), "ERROR:") {
		t.Fatalf("error row missing:\n%s", out.String())
	}
	// The healthy vanilla scenarios still produced rows.
	if !strings.Contains(out.String(), "quad/vanilla/Mix1/t2/s1/d20ms") {
		t.Fatalf("healthy rows missing:\n%s", out.String())
	}
}

func TestRunBadFlagsExitOne(t *testing.T) {
	for _, args := range [][]string{
		{"-seeds", "x"},
		{"-threads", "x"},
		{"-seeds", ""},
		{"-dur", "0"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 1 {
			t.Errorf("args %v: exit %d, want 1", args, code)
		}
	}
}
