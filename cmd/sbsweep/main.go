// Command sbsweep expands a scenario grid (platform x balancer x
// workload x threads x seed x fault plan) and runs it on the
// deterministic parallel sweep engine, with optional content-addressed
// result caching.
//
// Canonical results — the table or JSON lines — go to stdout and are
// byte-identical for any worker count and any cache state; timing,
// progress, and cache statistics are operator-facing side channels on
// stderr.
//
// Usage:
//
//	sbsweep -balancers vanilla,smartbalance -workloads Mix1,Mix5 -seeds 1-8
//	sbsweep -platforms biglittle -balancers gts,iks,smartbalance -workloads bodytrack -json
//	sbsweep -cache /tmp/sbcache -seeds 1-32 -progress
//
// Exit status: 0 on success, 1 if any scenario failed or the input was
// malformed, 2 if -expect-cached was set and at least one job had to
// execute.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"smartbalance/internal/core"
	"smartbalance/internal/sweep"
	"smartbalance/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus os.Exit, so tests can drive the full binary flow.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sbsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		platforms = fs.String("platforms", "quad", "comma-separated platforms: quad | biglittle | scaling:<n>")
		balancers = fs.String("balancers", "vanilla,smartbalance", "comma-separated balancers: smartbalance | vanilla | gts | iks | pinned")
		workloads = fs.String("workloads", "Mix1", "comma-separated workloads: benchmark name, MixN, or imb:<T><I>")
		threads   = fs.String("threads", "4", "comma-separated worker-thread counts")
		seeds     = fs.String("seeds", "1", "comma-separated seeds; a-b expands the inclusive range")
		faults    = fs.String("faults", "", `comma-separated fault plans, e.g. "none,drop=0.3;migfail=0.1" (empty sweeps clean)`)
		contSpecs = fs.String("contentions", "", `comma-separated contention specs, e.g. "none,on" or "on:llc=512" (empty sweeps uncontended)`)
		durMs     = fs.Int64("dur", 1500, "simulated duration per scenario in milliseconds")
		workers   = fs.Int("workers", 0, "sweep worker pool size (<= 0 selects GOMAXPROCS)")
		cacheDir  = fs.String("cache", "", "content-addressed result-cache directory (empty disables caching)")
		salt      = fs.String("salt", "", "extra fingerprint salt, for cache isolation between builds")
		jsonOut   = fs.Bool("json", false, "emit canonical JSON lines instead of a table")
		times     = fs.Bool("times", false, "print per-scenario wall times to stderr")
		progress  = fs.Bool("progress", false, "print live per-job status to stderr")
		expectHit = fs.Bool("expect-cached", false, "exit 2 if any job executed instead of being served from the cache")
		telPath   = fs.String("telemetry", "", "write the sweep's merged telemetry to this file (.prom writes Prometheus text, anything else canonical JSONL)")

		fleetMode     = fs.Bool("fleet", false, "sweep the fleet tier instead of single-node scenarios (grids nodes x policy x arrival; -balancers, -seeds, -dur still apply)")
		fleetNodes    = fs.String("fleet-nodes", "8", "comma-separated fleet sizes (with -fleet)")
		fleetPolicies = fs.String("fleet-policies", "rr,least,energy", "comma-separated dispatch policies (with -fleet)")
		fleetArrivals = fs.String("fleet-arrivals", "bursty", "comma-separated arrival specs (with -fleet)")
		fleetProfiles = fs.String("fleet-profiles", "quad,biglittle", "comma-separated node-platform profiles; each profile is itself a +-separated cycle, e.g. quad+biglittle (with -fleet)")
	)
	if err := fs.Parse(argv); err != nil {
		return 1
	}

	if *fleetMode {
		return runFleet(fleetArgs{
			nodes:     *fleetNodes,
			policies:  *fleetPolicies,
			arrivals:  *fleetArrivals,
			profiles:  *fleetProfiles,
			balancers: *balancers,
			seeds:     *seeds,
			durMs:     *durMs,
			workers:   *workers,
			cacheDir:  *cacheDir,
			salt:      *salt,
			jsonOut:   *jsonOut,
			progress:  *progress,
			expectHit: *expectHit,
		}, stdout, stderr)
	}

	grid := sweep.Grid{
		Platforms:   splitList(*platforms),
		Balancers:   splitList(*balancers),
		Workloads:   splitList(*workloads),
		Faults:      splitList(*faults),
		Contentions: splitList(*contSpecs),
		DurationNs:  *durMs * 1e6,
	}
	var err error
	if grid.Threads, err = parseInts(*threads); err != nil {
		fmt.Fprintf(stderr, "sbsweep: -threads: %v\n", err)
		return 1
	}
	if grid.Seeds, err = parseSeeds(*seeds); err != nil {
		fmt.Fprintf(stderr, "sbsweep: -seeds: %v\n", err)
		return 1
	}
	scs, err := grid.Expand()
	if err != nil {
		fmt.Fprintf(stderr, "sbsweep: %v\n", err)
		return 1
	}
	tasks, err := sweep.Tasks(scs, *salt)
	if err != nil {
		fmt.Fprintf(stderr, "sbsweep: %v\n", err)
		return 1
	}

	opts := sweep.Options{
		Workers: *workers,
		// The binary boundary is where real time may enter: per-job
		// timing below is operator-facing only and never reaches the
		// canonical stdout report.
		NewClock: core.RealClock,
	}
	var tel *telemetry.Collector
	if *telPath != "" {
		tel = telemetry.New(telemetry.Config{})
		tel.SetMeta("tool", "sbsweep")
		opts.Telemetry = tel
	}
	var cache *sweep.Cache
	if *cacheDir != "" {
		if cache, err = sweep.OpenCache(*cacheDir); err != nil {
			fmt.Fprintf(stderr, "sbsweep: %v\n", err)
			return 1
		}
		opts.Cache = cache
	}
	if *progress {
		opts.OnProgress = func(p sweep.Progress) {
			switch p.Status {
			case sweep.StatusFailed:
				fmt.Fprintf(stderr, "[%d/%d] %-8s %s: %v\n", p.Index+1, p.Total, p.Status, p.Key, p.Err)
			default:
				fmt.Fprintf(stderr, "[%d/%d] %-8s %s\n", p.Index+1, p.Total, p.Status, p.Key)
			}
		}
	}

	t0 := time.Now() //sbvet:allow wallclock(binary boundary: operator-facing sweep timing on stderr only)
	results, err := sweep.Execute(tasks, opts)
	wall := time.Since(t0)
	if err != nil {
		fmt.Fprintf(stderr, "sbsweep: %v\n", err)
		return 1
	}

	if *jsonOut {
		err = sweep.WriteJSONL(stdout, results)
	} else {
		err = sweep.RenderTable(stdout, results)
	}
	if err != nil {
		fmt.Fprintf(stderr, "sbsweep: %v\n", err)
		return 1
	}

	if *times {
		for i := range results {
			r := &results[i]
			src := "ran"
			if r.Cached {
				src = "cache"
			}
			fmt.Fprintf(stderr, "%-6s %8.1fms  %s\n", src, float64(r.WallNs)/1e6, r.Key)
		}
	}
	s := sweep.Summarize(results)
	fmt.Fprintf(stderr, "sbsweep: jobs=%d ok=%d failed=%d cached=%d workers=%d wall=%v\n",
		s.Jobs, s.OK, s.Failed, s.Cached, sweep.Workers(*workers), wall.Round(time.Millisecond))
	if cache != nil {
		cs := cache.Stats()
		fmt.Fprintf(stderr, "sbsweep: cache %s: hits=%d misses=%d writes=%d write-errors=%d corrupt-evicted=%d\n",
			cache.Dir(), cs.Hits, cs.Misses, cs.Writes, cs.WriteErrs, cs.Corrupt)
	}
	for _, st := range s.Stacks {
		fmt.Fprintf(stderr, "sbsweep: recovered panic in %s\n", st)
	}
	if tel != nil {
		sweep.RecordTelemetry(tel, results, cache)
		if err := writeTelemetry(*telPath, tel); err != nil {
			fmt.Fprintf(stderr, "sbsweep: telemetry: %v\n", err)
			return 1
		}
	}

	if s.Failed > 0 {
		return 1
	}
	if *expectHit && s.Cached < s.Jobs {
		fmt.Fprintf(stderr, "sbsweep: -expect-cached: %d of %d jobs executed\n", s.Jobs-s.Cached, s.Jobs)
		return 2
	}
	return 0
}

// fleetArgs carries the flag values runFleet consumes.
type fleetArgs struct {
	nodes, policies, arrivals, profiles string
	balancers, seeds                    string
	durMs                               int64
	workers                             int
	cacheDir, salt                      string
	jsonOut, progress, expectHit        bool
}

// runFleet expands and executes a fleet-tier sweep on the same engine,
// cache, and exit-status contract as scenario sweeps.
func runFleet(a fleetArgs, stdout, stderr io.Writer) int {
	grid := sweep.FleetGrid{
		Profiles:   splitList(a.profiles),
		Balancers:  splitList(a.balancers),
		Policies:   splitList(a.policies),
		Arrivals:   splitList(a.arrivals),
		DurationNs: a.durMs * 1e6,
	}
	// Profile cycles are "+"-separated in the flag (a profile is itself
	// a comma list, which would collide with the axis separator).
	for i, p := range grid.Profiles {
		grid.Profiles[i] = strings.ReplaceAll(p, "+", ",")
	}
	var err error
	if grid.Nodes, err = parseInts(a.nodes); err != nil {
		fmt.Fprintf(stderr, "sbsweep: -fleet-nodes: %v\n", err)
		return 1
	}
	if grid.Seeds, err = parseSeeds(a.seeds); err != nil {
		fmt.Fprintf(stderr, "sbsweep: -seeds: %v\n", err)
		return 1
	}
	scs, err := grid.Expand()
	if err != nil {
		fmt.Fprintf(stderr, "sbsweep: %v\n", err)
		return 1
	}
	tasks, err := sweep.FleetTasks(scs, a.salt)
	if err != nil {
		fmt.Fprintf(stderr, "sbsweep: %v\n", err)
		return 1
	}
	opts := sweep.Options{Workers: a.workers, NewClock: core.RealClock}
	var cache *sweep.Cache
	if a.cacheDir != "" {
		if cache, err = sweep.OpenCache(a.cacheDir); err != nil {
			fmt.Fprintf(stderr, "sbsweep: %v\n", err)
			return 1
		}
		opts.Cache = cache
	}
	if a.progress {
		opts.OnProgress = func(p sweep.Progress) {
			switch p.Status {
			case sweep.StatusFailed:
				fmt.Fprintf(stderr, "[%d/%d] %-8s %s: %v\n", p.Index+1, p.Total, p.Status, p.Key, p.Err)
			default:
				fmt.Fprintf(stderr, "[%d/%d] %-8s %s\n", p.Index+1, p.Total, p.Status, p.Key)
			}
		}
	}

	t0 := time.Now() //sbvet:allow wallclock(binary boundary: operator-facing sweep timing on stderr only)
	results, err := sweep.Execute(tasks, opts)
	wall := time.Since(t0)
	if err != nil {
		fmt.Fprintf(stderr, "sbsweep: %v\n", err)
		return 1
	}
	if a.jsonOut {
		err = sweep.WriteJSONL(stdout, results)
	} else {
		err = sweep.RenderFleetTable(stdout, results)
	}
	if err != nil {
		fmt.Fprintf(stderr, "sbsweep: %v\n", err)
		return 1
	}
	s := sweep.Summarize(results)
	fmt.Fprintf(stderr, "sbsweep: fleet jobs=%d ok=%d failed=%d cached=%d workers=%d wall=%v\n",
		s.Jobs, s.OK, s.Failed, s.Cached, sweep.Workers(a.workers), wall.Round(time.Millisecond))
	if cache != nil {
		cs := cache.Stats()
		fmt.Fprintf(stderr, "sbsweep: cache %s: hits=%d misses=%d writes=%d write-errors=%d corrupt-evicted=%d\n",
			cache.Dir(), cs.Hits, cs.Misses, cs.Writes, cs.WriteErrs, cs.Corrupt)
	}
	for _, st := range s.Stacks {
		fmt.Fprintf(stderr, "sbsweep: recovered panic in %s\n", st)
	}
	if s.Failed > 0 {
		return 1
	}
	if a.expectHit && s.Cached < s.Jobs {
		fmt.Fprintf(stderr, "sbsweep: -expect-cached: %d of %d jobs executed\n", s.Jobs-s.Cached, s.Jobs)
		return 2
	}
	return 0
}

// writeTelemetry exports the merged sweep telemetry: Prometheus text
// for .prom paths, canonical JSONL otherwise.
func writeTelemetry(path string, tel *telemetry.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tr := tel.Trace()
	if strings.HasSuffix(path, ".prom") {
		err = telemetry.WriteProm(f, tr)
	} else {
		err = telemetry.WriteJSONL(f, tr)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseSeeds parses a comma-separated seed list where each item is a
// single seed or an inclusive range "a-b" (e.g. "1,5,10-14").
func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range splitList(s) {
		lo, hi, ok := strings.Cut(part, "-")
		a, err := strconv.ParseUint(lo, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		if !ok {
			out = append(out, a)
			continue
		}
		b, err := strconv.ParseUint(hi, 10, 64)
		if err != nil || b < a {
			return nil, fmt.Errorf("bad seed range %q", part)
		}
		if b-a >= 1<<20 {
			return nil, fmt.Errorf("seed range %q too large", part)
		}
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
	}
	return out, nil
}
