// Command sbtrain runs SmartBalance's offline profiling and training
// step and prints the resulting predictor: the Table 4 coefficient
// matrix Θ, the per-core-type power fits (Eq. 9), and the held-out
// prediction error (the Fig. 6 metric).
//
// Usage:
//
//	sbtrain                 # train for the Table 2 quad-HMP types
//	sbtrain -types biglittle
//	sbtrain -seed 7 -holdout-seed 99
package main

import (
	"flag"
	"fmt"
	"os"

	"smartbalance"
	"smartbalance/internal/arch"
	"smartbalance/internal/core"
	"smartbalance/internal/tablefmt"
	"smartbalance/internal/workload"
)

func main() {
	var (
		typeSet     = flag.String("types", "table2", "core-type set: table2 | biglittle")
		seed        = flag.Uint64("seed", 1, "training corpus seed")
		holdoutSeed = flag.Uint64("holdout-seed", 7734, "held-out workload jitter seed")
	)
	flag.Parse()

	types, err := typesFor(*typeSet)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := core.DefaultTrainConfig()
	cfg.Seed = *seed
	pred, err := core.Train(types, cfg)
	if err != nil {
		fatalf("train: %v", err)
	}

	// Θ matrix in Table 4 layout.
	headers := append([]string{"Predictor IPC"}, core.FeatureNames()...)
	tb := tablefmt.New("Predictor coefficient matrix (Table 4 layout)", headers...)
	for s := range types {
		for d := range types {
			if s == d {
				continue
			}
			m := pred.Model(arch.CoreTypeID(s), arch.CoreTypeID(d))
			cells := []string{fmt.Sprintf("%s->%s", types[s].Name, types[d].Name)}
			for _, c := range m.Coef {
				cells = append(cells, fmt.Sprintf("%.3f", c))
			}
			tb.AddRow(cells...)
		}
	}
	if err := tb.Render(os.Stdout); err != nil {
		fatalf("render: %v", err)
	}

	// Eq. 9 power fits.
	fmt.Printf("\nPower fits p = a1*ipc + a0 (Eq. 9, from offline profiling):\n")
	for tid := range types {
		f := pred.PowerFitFor(arch.CoreTypeID(tid))
		fmt.Printf("  %-8s a1=%8.4f W/IPC   a0=%8.4f W\n", types[tid].Name, f.Alpha1, f.Alpha0)
	}

	// Held-out error (Fig. 6 metric).
	var held []workload.Phase
	for _, name := range workload.Benchmarks() {
		specs, err := workload.Benchmark(name, 2, *holdoutSeed)
		if err != nil {
			fatalf("holdout: %v", err)
		}
		for i := range specs {
			held = append(held, specs[i].Phases...)
		}
	}
	perf, power, err := core.PredictionError(pred, held, cfg.SensorSigma, *seed+1)
	if err != nil {
		fatalf("evaluate: %v", err)
	}
	fmt.Printf("\nHeld-out prediction error: performance %.2f%%, power %.2f%% (paper: 4.2%%, 5%%)\n",
		perf, power)
}

// typesFor resolves a named core-type set.
func typesFor(name string) ([]smartbalance.CoreType, error) {
	switch name {
	case "table2":
		return smartbalance.Table2Types(), nil
	case "biglittle":
		return smartbalance.BigLittleTypes(), nil
	}
	return nil, fmt.Errorf("unknown type set %q (table2 | biglittle)", name)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sbtrain: "+format+"\n", args...)
	os.Exit(1)
}
