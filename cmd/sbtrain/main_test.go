package main

import "testing"

func TestTypesFor(t *testing.T) {
	ts, err := typesFor("table2")
	if err != nil || len(ts) != 4 {
		t.Fatalf("table2: %d types, %v", len(ts), err)
	}
	ts, err = typesFor("biglittle")
	if err != nil || len(ts) != 2 {
		t.Fatalf("biglittle: %d types, %v", len(ts), err)
	}
	if _, err := typesFor("nope"); err == nil {
		t.Fatal("unknown type set accepted")
	}
}
