// Command sbhunt runs the adversarial scenario search: a seeded
// evolutionary hunt over scenario genomes scored on falsification
// objectives (SmartBalance losing to a baseline, SLO violations,
// flight-recorder anomalies, worker-count divergence), followed by a
// delta-debugging minimizer that shrinks each counterexample before
// pinning it to a corpus directory.
//
// Usage:
//
//	sbhunt -seed 7 -out testdata/corpus
//	sbhunt -seed 7 -gens 6 -pop 16 -workers 8 -cache .sbcache
//	sbhunt -replay testdata/corpus
//
// The hunt log on stdout is a pure function of the flags minus
// -workers and -cache: a fixed seed produces byte-identical stdout
// and corpus files for any worker count, cached or cold.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"smartbalance/internal/hunt"
	"smartbalance/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus os.Exit, so tests can drive the full binary flow.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sbhunt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed    = fs.Uint64("seed", 1, "hunt seed; reproduces the whole search")
		gens    = fs.Int("gens", 0, "generations (0 = default)")
		pop     = fs.Int("pop", 0, "population per generation (0 = default)")
		workers = fs.Int("workers", 1, "evaluation worker pool (never changes any output, only wall-clock)")
		cache   = fs.String("cache", "", "content-addressed result cache directory (shared with sbsweep)")
		sloP99  = fs.Float64("slo-p99", hunt.DefaultSLO().P99Ms, "fleet p99 latency SLO in milliseconds")
		sloJPR  = fs.Float64("slo-jpr", hunt.DefaultSLO().JPR, "fleet energy SLO in joules per request")
		margin  = fs.Float64("margin", 0, "relative loss tolerance on comparative objectives (0 = default)")
		tier    = fs.String("tier", "", "restrict the search: node | fleet (default both)")
		out     = fs.String("out", "", "write minimized counterexamples to this corpus directory")
		replay  = fs.String("replay", "", "replay a corpus directory instead of hunting; exits non-zero if any entry stopped violating")
	)
	if err := fs.Parse(argv); err != nil {
		return 1
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "sbhunt: unexpected argument %q\n", fs.Arg(0))
		return 1
	}

	var c *sweep.Cache
	if *cache != "" {
		var err error
		c, err = sweep.OpenCache(*cache)
		if err != nil {
			fmt.Fprintf(stderr, "sbhunt: %v\n", err)
			return 1
		}
	}

	if *replay != "" {
		return runReplay(*replay, c, *workers, stdout, stderr)
	}

	cfg := hunt.Config{
		Seed:        *seed,
		Generations: *gens,
		Population:  *pop,
		Workers:     *workers,
		Cache:       c,
		SLO:         hunt.SLO{P99Ms: *sloP99, JPR: *sloJPR},
		Margin:      *margin,
		Log:         stdout,
	}
	if *tier != "" {
		cfg.Tiers = strings.Split(*tier, ",")
	}
	res, err := hunt.Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "sbhunt: %v\n", err)
		return 1
	}
	if *out != "" {
		names, err := hunt.WriteCorpus(*out, res.Counterexamples)
		if err != nil {
			fmt.Fprintf(stderr, "sbhunt: %v\n", err)
			return 1
		}
		for _, name := range names {
			fmt.Fprintf(stdout, "corpus %s\n", name)
		}
	}
	return 0
}

// runReplay re-evaluates every pinned counterexample in dir.
func runReplay(dir string, c *sweep.Cache, workers int, stdout, stderr io.Writer) int {
	entries, err := hunt.LoadCorpus(dir)
	if err != nil {
		fmt.Fprintf(stderr, "sbhunt: %v\n", err)
		return 1
	}
	if len(entries) == 0 {
		fmt.Fprintf(stderr, "sbhunt: corpus %s is empty\n", dir)
		return 1
	}
	results := hunt.Replay(&hunt.Evaluator{Cache: c, Workers: workers}, entries)
	failed := 0
	for _, r := range results {
		switch {
		case r.Err != nil:
			fmt.Fprintf(stdout, "replay %s ERROR %v\n", r.Entry.Name(), r.Err)
			failed++
		case !r.OK:
			fmt.Fprintf(stdout, "replay %s GONE %s\n", r.Entry.Name(), r.Violation.Detail)
			failed++
		default:
			fmt.Fprintf(stdout, "replay %s ok (%s)\n", r.Entry.Name(), r.Violation.Detail)
		}
	}
	fmt.Fprintf(stdout, "replay done entries=%d failed=%d\n", len(results), failed)
	if failed > 0 {
		return 1
	}
	return 0
}
