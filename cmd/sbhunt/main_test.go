package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI drives the full binary flow and returns stdout.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("sbhunt %v exited %d: %s", args, code, stderr.String())
	}
	return stdout.String()
}

// huntArgs is a small, fast hunt budget shared by the CLI tests.
var huntArgs = []string{"-seed", "42", "-gens", "2", "-pop", "8"}

func TestHuntLogDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full hunt in -short mode")
	}
	outSerial := runCLI(t, huntArgs...)
	outParallel := runCLI(t, append([]string{"-workers", "8"}, huntArgs...)...)
	if outSerial != outParallel {
		t.Errorf("stdout differs between -workers 1 and 8:\n%s\nvs\n%s", outSerial, outParallel)
	}
	if !strings.Contains(outSerial, "hunt seed=42 gens=2 pop=8") {
		t.Errorf("missing hunt header:\n%s", outSerial)
	}
	if !strings.Contains(outSerial, "hunt done evaluated=16") {
		t.Errorf("missing hunt summary:\n%s", outSerial)
	}
}

func TestHuntWritesAndReplaysCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full hunt in -short mode")
	}
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus")
	cache := filepath.Join(dir, "cache")
	// Seed 3 at this budget is the corpus-generation configuration; it
	// finds counterexamples on several objectives.
	out := runCLI(t, "-seed", "3", "-gens", "4", "-pop", "12",
		"-workers", "8", "-cache", cache, "-out", corpus)
	if !strings.Contains(out, "corpus ") {
		t.Fatalf("hunt found no counterexamples to pin:\n%s", out)
	}
	replay := runCLI(t, "-replay", corpus, "-workers", "8", "-cache", cache)
	if !strings.Contains(replay, "failed=0") || strings.Contains(replay, "GONE") {
		t.Errorf("fresh corpus replay failed:\n%s", replay)
	}
}

func TestReplayFailsOnEmptyCorpus(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-replay", t.TempDir()}, &stdout, &stderr); code == 0 {
		t.Error("replay of an empty corpus exited 0")
	}
}

func TestRejectsUnknownTierAndStrayArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-tier", "galaxy"}, &stdout, &stderr); code == 0 {
		t.Error("unknown -tier exited 0")
	}
	stderr.Reset()
	if code := run([]string{"stray"}, &stdout, &stderr); code == 0 {
		t.Error("stray positional argument exited 0")
	}
}
