package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smartbalance"
)

// update regenerates the committed golden files instead of comparing
// against them: go test ./cmd/sbtrace -update
var update = flag.Bool("update", false, "rewrite golden files")

// writeSeedTrace runs one deterministic SmartBalance scenario with
// telemetry attached and writes the canonical JSONL export to a temp
// file, returning its path. Only the seed varies between calls, so two
// different-seed traces diverge purely through the simulation.
func writeSeedTrace(t *testing.T, seed uint64) string {
	t.Helper()
	plat := smartbalance.QuadHMP()
	pred, err := smartbalance.TrainPredictor(plat.Types, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smartbalance.DefaultSmartBalanceConfig()
	cfg.Anneal.Seed = seed
	cfg.Clock = smartbalance.NewFakeClock(time.Microsecond)
	bal, err := smartbalance.NewSmartBalanceController(pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kcfg := smartbalance.DefaultKernelConfig()
	kcfg.Seed = seed
	sys, err := smartbalance.NewSystemWithConfig(plat, bal, kcfg)
	if err != nil {
		t.Fatal(err)
	}
	tel := sys.EnableTelemetry(smartbalance.TelemetryConfig{})
	tel.SetMeta("seed", "s") // fixed: the divergence must come from the run itself
	specs, err := smartbalance.Mix("Mix1", 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SpawnAll(specs); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(600 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), fmt.Sprintf("seed%d.jsonl", seed))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := smartbalance.WriteTelemetryJSONL(f, tel.Trace()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// sbtrace drives run() the way main does and returns exit code and
// captured stdout/stderr.
func sbtrace(args ...string) (int, string, string) {
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSummary(t *testing.T) {
	path := writeSeedTrace(t, 1)
	code, out, errOut := sbtrace("summary", path)
	if code != 0 {
		t.Fatalf("summary exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"meta balancer", "epochs", "spans", "sense", "migrate", "metrics", "anomalies"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

// TestFleetSummaryGolden pins the fleet-tier summary rendering against
// a committed trace (testdata/fleet_small.jsonl, produced by
// `sbfleet -nodes 2 -dur 100 -seed 3 -arrival bursty:... -telemetry`)
// and its golden output. Regenerate both with -update after an
// intentional format change.
func TestFleetSummaryGolden(t *testing.T) {
	fixture := filepath.Join("testdata", "fleet_small.jsonl")
	golden := filepath.Join("testdata", "fleet_summary.golden")
	code, out, errOut := sbtrace("summary", fixture)
	if code != 0 {
		t.Fatalf("summary exit %d, stderr: %s", code, errOut)
	}
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("fleet summary drifted from golden (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", out, want)
	}
	for _, frag := range []string{"meta tier         fleet", "fleet     nodes=2 policy=energy", "node   0 ", "node   1 ", "joules/request="} {
		if !strings.Contains(out, frag) {
			t.Errorf("fleet summary missing %q", frag)
		}
	}
}

func TestGrep(t *testing.T) {
	path := writeSeedTrace(t, 1)
	code, out, _ := sbtrace("grep", `phase=sense`, path)
	if code != 0 {
		t.Fatalf("grep exit %d", code)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.Contains(line, "phase=sense") {
			t.Fatalf("grep leaked non-matching line %q", line)
		}
	}
	if code, out, _ := sbtrace("grep", "no-such-token-anywhere", path); code != 1 || out != "" {
		t.Fatalf("no-match grep: exit %d, out %q; want exit 1 and no output", code, out)
	}
	if code, _, _ := sbtrace("grep", "(unclosed", path); code != 2 {
		t.Fatalf("bad pattern exit %d, want 2", code)
	}
}

// TestDiffLocalizesSeedDivergence is the acceptance criterion: two runs
// differing only in seed must diff to exit 1 naming the first divergent
// epoch, and identical runs to exit 0.
func TestDiffLocalizesSeedDivergence(t *testing.T) {
	a := writeSeedTrace(t, 1)
	b := writeSeedTrace(t, 1)
	code, out, errOut := sbtrace("diff", a, b)
	if code != 0 {
		t.Fatalf("same-seed diff: exit %d, out %q, stderr %q", code, out, errOut)
	}
	if !strings.Contains(out, "identical") {
		t.Fatalf("same-seed diff output %q", out)
	}

	c := writeSeedTrace(t, 2)
	code, out, _ = sbtrace("diff", a, c)
	if code != 1 {
		t.Fatalf("different-seed diff: exit %d, want 1 (out %q)", code, out)
	}
	if !strings.Contains(out, "first divergent epoch") {
		t.Fatalf("diff output does not localise: %q", out)
	}
}

func TestConvert(t *testing.T) {
	path := writeSeedTrace(t, 1)

	// jsonl round-trip: converting the canonical format re-emits the
	// input bytes exactly.
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	code, out, errOut := sbtrace("convert", "-format", "jsonl", path)
	if code != 0 {
		t.Fatalf("convert jsonl exit %d, stderr: %s", code, errOut)
	}
	if !bytes.Equal([]byte(out), orig) {
		t.Fatal("jsonl convert is not byte-identical to the input trace")
	}

	code, out, _ = sbtrace("convert", "-format", "chrome", path)
	if code != 0 {
		t.Fatalf("convert chrome exit %d", code)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome output has no events")
	}

	code, out, _ = sbtrace("convert", "-format", "prom", path)
	if code != 0 {
		t.Fatalf("convert prom exit %d", code)
	}
	if !strings.Contains(out, "# TYPE") || !strings.Contains(out, "smartbalance_epochs_total") {
		t.Fatalf("prom output malformed:\n%s", out)
	}

	if code, _, _ := sbtrace("convert", "-format", "xml", path); code != 2 {
		t.Fatalf("unknown format exit %d, want 2", code)
	}
}

func TestUsageAndErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"summary"},
		{"summary", "/nonexistent/trace.jsonl"},
		{"grep", "x"},
		{"diff", "only-one.jsonl"},
		{"convert"},
	}
	for _, args := range cases {
		if code, _, _ := sbtrace(args...); code != 2 {
			t.Errorf("sbtrace %v exit %d, want 2", args, code)
		}
	}
	if code, out, _ := sbtrace("help"); code != 0 || !strings.Contains(out, "usage") {
		t.Errorf("help exit %d out %q", code, out)
	}
}
