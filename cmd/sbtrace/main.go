// Command sbtrace inspects telemetry traces produced by sbsim
// -telemetry, sbsweep -telemetry, and sbfleet -telemetry (the
// canonical JSONL interchange format). Fleet traces (meta tier=fleet)
// additionally get a per-node rollup in summary.
//
// Usage:
//
//	sbtrace summary run.jsonl
//	sbtrace grep 'phase=migrate.*to=0' run.jsonl
//	sbtrace diff a.jsonl b.jsonl
//	sbtrace convert -format chrome run.jsonl > run.trace.json
//
// diff compares two traces epoch-first and reports the first divergent
// epoch — the bisection primitive for "these two runs should have been
// identical". Exit status: 0 when identical, 1 when the traces
// diverge, 2 on usage or I/O errors.
package main

import (
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"

	"smartbalance/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus os.Exit, so tests can drive the full binary flow.
func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) == 0 {
		usage(stderr)
		return 2
	}
	switch argv[0] {
	case "summary":
		return runSummary(argv[1:], stdout, stderr)
	case "grep":
		return runGrep(argv[1:], stdout, stderr)
	case "diff":
		return runDiff(argv[1:], stdout, stderr)
	case "convert":
		return runConvert(argv[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	}
	fmt.Fprintf(stderr, "sbtrace: unknown command %q\n", argv[0])
	usage(stderr)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  sbtrace summary FILE             aggregate statistics of one trace
  sbtrace grep PATTERN FILE        print trace lines matching a regexp
  sbtrace diff A B                 first divergent epoch of two traces
  sbtrace convert -format F FILE   re-render as jsonl | chrome | prom
`)
}

// load reads one canonical JSONL trace.
func load(path string) (*telemetry.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return telemetry.ReadJSONL(f)
}

func runSummary(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "sbtrace: summary wants exactly one trace file")
		return 2
	}
	tr, err := load(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: %v\n", err)
		return 2
	}
	for _, k := range sortedKeys(tr.Meta) {
		fmt.Fprintf(stdout, "meta %-12s %s\n", k, tr.Meta[k])
	}
	spans := 0
	byPhase := map[string]int{}
	for _, e := range tr.Epochs {
		spans += len(e.Spans)
		for _, s := range e.Spans {
			byPhase[s.Phase]++
		}
	}
	fmt.Fprintf(stdout, "epochs    %d\n", len(tr.Epochs))
	fmt.Fprintf(stdout, "spans     %d\n", spans)
	for _, p := range sortedKeySetOf(byPhase) {
		fmt.Fprintf(stdout, "  %-12s %d\n", p, byPhase[p])
	}
	fmt.Fprintf(stdout, "metrics   %d\n", len(tr.Metrics))
	fmt.Fprintf(stdout, "anomalies %d\n", len(tr.Anomalies))
	for _, a := range tr.Anomalies {
		fmt.Fprintf(stdout, "  %s\n", a.String())
	}
	fmt.Fprintf(stdout, "dumps     %d\n", len(tr.Dumps))
	if tr.Meta["tier"] == "fleet" {
		fleetSummary(stdout, tr)
	}
	return 0
}

// fleetNodeMetric matches the per-node rollup metrics a fleet run
// exports, e.g. `fleet_node_energy_j{node="3"}`.
var fleetNodeMetric = regexp.MustCompile(`^fleet_node_([a-z0-9_]+)\{node="(\d+)"\}$`)

// fleetSummary renders the fleet-tier rollup: fleet totals followed by
// one line per node, reconstructed from the fleet_* and fleet_node_*
// metrics a tier=fleet trace carries.
func fleetSummary(w io.Writer, tr *telemetry.Trace) {
	totals := map[string]float64{}
	perNode := map[int]map[string]float64{}
	for _, m := range tr.Metrics {
		if sub := fleetNodeMetric.FindStringSubmatch(m.Key); sub != nil {
			id, err := strconv.Atoi(sub[2])
			if err != nil {
				continue
			}
			if perNode[id] == nil {
				perNode[id] = map[string]float64{}
			}
			perNode[id][sub[1]] = m.Value
			continue
		}
		if len(m.Key) > 6 && m.Key[:6] == "fleet_" && m.Kind != telemetry.KindHistogram {
			totals[m.Key] = m.Value
		}
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(w, "fleet     nodes=%s policy=%s arrival=%s\n",
		tr.Meta["nodes"], tr.Meta["policy"], tr.Meta["arrival"])
	fmt.Fprintf(w, "  requests=%.0f completed=%.0f inflight=%.0f\n",
		totals["fleet_requests_total"], totals["fleet_completed_total"], totals["fleet_inflight"])
	fmt.Fprintf(w, "  energy_j=%s joules/request=%s\n",
		g(totals["fleet_energy_j"]), g(totals["fleet_joules_per_request"]))
	fmt.Fprintf(w, "  latency p50=%sms p95=%sms p99=%sms max=%sms\n",
		g(totals["fleet_p50_ms"]), g(totals["fleet_p95_ms"]), g(totals["fleet_p99_ms"]), g(totals["fleet_max_ms"]))
	ids := make([]int, 0, len(perNode))
	for id := range perNode {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		n := perNode[id]
		fmt.Fprintf(w, "  node %3d requests=%.0f completed=%.0f energy_j=%s j/req=%s p99_ms=%s\n",
			id, n["requests_total"], n["completed_total"],
			g(n["energy_j"]), g(n["joules_per_request"]), g(n["p99_ms"]))
	}
}

func runGrep(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "sbtrace: grep wants PATTERN FILE")
		return 2
	}
	re, err := regexp.Compile(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: bad pattern: %v\n", err)
		return 2
	}
	tr, err := load(args[1])
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: %v\n", err)
		return 2
	}
	matched := 0
	emit := func(line string) {
		if re.MatchString(line) {
			fmt.Fprintln(stdout, line)
			matched++
		}
	}
	for _, e := range tr.Epochs {
		for _, s := range e.Spans {
			emit(s.String())
		}
	}
	for _, m := range tr.Metrics {
		emit(m.String())
	}
	for _, a := range tr.Anomalies {
		emit(a.String())
	}
	if matched == 0 {
		return 1
	}
	return 0
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "sbtrace: diff wants two trace files")
		return 2
	}
	a, err := load(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: %v\n", err)
		return 2
	}
	b, err := load(args[1])
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: %v\n", err)
		return 2
	}
	d := telemetry.FirstDivergence(a, b)
	if d == nil {
		fmt.Fprintln(stdout, "traces are identical")
		return 0
	}
	fmt.Fprintln(stdout, d.String())
	return 1
}

func runConvert(args []string, stdout, stderr io.Writer) int {
	format := "jsonl"
	if len(args) >= 2 && args[0] == "-format" {
		format = args[1]
		args = args[2:]
	}
	if len(args) != 1 {
		fmt.Fprintln(stderr, "sbtrace: convert wants [-format jsonl|chrome|prom] FILE")
		return 2
	}
	tr, err := load(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: %v\n", err)
		return 2
	}
	switch format {
	case "jsonl":
		err = telemetry.WriteJSONL(stdout, tr)
	case "chrome":
		err = telemetry.WriteChrome(stdout, tr)
	case "prom":
		err = telemetry.WriteProm(stdout, tr)
	default:
		fmt.Fprintf(stderr, "sbtrace: unknown format %q (jsonl | chrome | prom)\n", format)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: %v\n", err)
		return 2
	}
	return 0
}

// sortedKeys returns a string map's keys in sorted order.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedKeySetOf returns an int-valued map's keys in sorted order.
func sortedKeySetOf(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
