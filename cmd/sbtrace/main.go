// Command sbtrace inspects telemetry traces produced by sbsim
// -telemetry and sbsweep -telemetry (the canonical JSONL interchange
// format).
//
// Usage:
//
//	sbtrace summary run.jsonl
//	sbtrace grep 'phase=migrate.*to=0' run.jsonl
//	sbtrace diff a.jsonl b.jsonl
//	sbtrace convert -format chrome run.jsonl > run.trace.json
//
// diff compares two traces epoch-first and reports the first divergent
// epoch — the bisection primitive for "these two runs should have been
// identical". Exit status: 0 when identical, 1 when the traces
// diverge, 2 on usage or I/O errors.
package main

import (
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"

	"smartbalance/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus os.Exit, so tests can drive the full binary flow.
func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) == 0 {
		usage(stderr)
		return 2
	}
	switch argv[0] {
	case "summary":
		return runSummary(argv[1:], stdout, stderr)
	case "grep":
		return runGrep(argv[1:], stdout, stderr)
	case "diff":
		return runDiff(argv[1:], stdout, stderr)
	case "convert":
		return runConvert(argv[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	}
	fmt.Fprintf(stderr, "sbtrace: unknown command %q\n", argv[0])
	usage(stderr)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  sbtrace summary FILE             aggregate statistics of one trace
  sbtrace grep PATTERN FILE        print trace lines matching a regexp
  sbtrace diff A B                 first divergent epoch of two traces
  sbtrace convert -format F FILE   re-render as jsonl | chrome | prom
`)
}

// load reads one canonical JSONL trace.
func load(path string) (*telemetry.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return telemetry.ReadJSONL(f)
}

func runSummary(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "sbtrace: summary wants exactly one trace file")
		return 2
	}
	tr, err := load(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: %v\n", err)
		return 2
	}
	for _, k := range sortedKeys(tr.Meta) {
		fmt.Fprintf(stdout, "meta %-12s %s\n", k, tr.Meta[k])
	}
	spans := 0
	byPhase := map[string]int{}
	for _, e := range tr.Epochs {
		spans += len(e.Spans)
		for _, s := range e.Spans {
			byPhase[s.Phase]++
		}
	}
	fmt.Fprintf(stdout, "epochs    %d\n", len(tr.Epochs))
	fmt.Fprintf(stdout, "spans     %d\n", spans)
	for _, p := range sortedKeySetOf(byPhase) {
		fmt.Fprintf(stdout, "  %-12s %d\n", p, byPhase[p])
	}
	fmt.Fprintf(stdout, "metrics   %d\n", len(tr.Metrics))
	fmt.Fprintf(stdout, "anomalies %d\n", len(tr.Anomalies))
	for _, a := range tr.Anomalies {
		fmt.Fprintf(stdout, "  %s\n", a.String())
	}
	fmt.Fprintf(stdout, "dumps     %d\n", len(tr.Dumps))
	return 0
}

func runGrep(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "sbtrace: grep wants PATTERN FILE")
		return 2
	}
	re, err := regexp.Compile(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: bad pattern: %v\n", err)
		return 2
	}
	tr, err := load(args[1])
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: %v\n", err)
		return 2
	}
	matched := 0
	emit := func(line string) {
		if re.MatchString(line) {
			fmt.Fprintln(stdout, line)
			matched++
		}
	}
	for _, e := range tr.Epochs {
		for _, s := range e.Spans {
			emit(s.String())
		}
	}
	for _, m := range tr.Metrics {
		emit(m.String())
	}
	for _, a := range tr.Anomalies {
		emit(a.String())
	}
	if matched == 0 {
		return 1
	}
	return 0
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "sbtrace: diff wants two trace files")
		return 2
	}
	a, err := load(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: %v\n", err)
		return 2
	}
	b, err := load(args[1])
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: %v\n", err)
		return 2
	}
	d := telemetry.FirstDivergence(a, b)
	if d == nil {
		fmt.Fprintln(stdout, "traces are identical")
		return 0
	}
	fmt.Fprintln(stdout, d.String())
	return 1
}

func runConvert(args []string, stdout, stderr io.Writer) int {
	format := "jsonl"
	if len(args) >= 2 && args[0] == "-format" {
		format = args[1]
		args = args[2:]
	}
	if len(args) != 1 {
		fmt.Fprintln(stderr, "sbtrace: convert wants [-format jsonl|chrome|prom] FILE")
		return 2
	}
	tr, err := load(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: %v\n", err)
		return 2
	}
	switch format {
	case "jsonl":
		err = telemetry.WriteJSONL(stdout, tr)
	case "chrome":
		err = telemetry.WriteChrome(stdout, tr)
	case "prom":
		err = telemetry.WriteProm(stdout, tr)
	default:
		fmt.Fprintf(stderr, "sbtrace: unknown format %q (jsonl | chrome | prom)\n", format)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "sbtrace: %v\n", err)
		return 2
	}
	return 0
}

// sortedKeys returns a string map's keys in sorted order.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedKeySetOf returns an int-valued map's keys in sorted order.
func sortedKeySetOf(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
