// Command sbsim runs one simulation scenario — a platform, a workload,
// and a balancing policy — and prints the resulting run statistics.
//
// Usage:
//
//	sbsim -platform quad -workload Mix1 -threads 4 -balancer smartbalance
//	sbsim -platform biglittle -workload bodytrack -balancer gts -dur 2000
//	sbsim -platform scaling:16 -workload imb:HTHI -balancer vanilla
//	sbsim -workload Mix1 -balancer smartbalance -fault "drop=0.3;migfail=0.1"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"smartbalance"
)

func main() {
	var (
		platName = flag.String("platform", "quad", "quad | biglittle | scaling:<n>")
		wl       = flag.String("workload", "Mix1", "benchmark name, MixN, or imb:<T><I> (e.g. imb:HTMI)")
		threads  = flag.Int("threads", 4, "worker threads per benchmark")
		balName  = flag.String("balancer", "smartbalance", "smartbalance | vanilla | gts | iks | pinned")
		durMs    = flag.Int64("dur", 1500, "simulated duration in milliseconds")
		seed     = flag.Uint64("seed", 1, "workload/optimiser seed")
		perTask  = flag.Bool("tasks", false, "also print per-task statistics")
		traceN   = flag.Int("trace", 0, "print a scheduling-trace summary and the last N events (0 disables)")
		faultStr = flag.String("fault", "", `fault-injection plan, e.g. "drop=0.3;stale=0.1;migfail=0.2" (empty runs clean)`)
		telPath  = flag.String("telemetry", "", "write a telemetry trace (canonical JSONL) to this file; composes with -trace")
		queue    = flag.String("queue", "calendar", "event-queue implementation: calendar | heap (output is byte-identical under either)")
	)
	flag.Parse()

	plat, err := parsePlatform(*platName)
	if err != nil {
		fatalf("%v", err)
	}
	specs, err := parseWorkload(*wl, *threads, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	bal, err := parseBalancer(*balName, plat, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := smartbalance.DefaultKernelConfig()
	switch *queue {
	case "calendar":
		cfg.EventQueue = smartbalance.EventQueueCalendar
	case "heap":
		cfg.EventQueue = smartbalance.EventQueueHeap
	default:
		fatalf("unknown -queue %q (want calendar or heap)", *queue)
	}
	plan, err := smartbalance.ParseFaultPlan(*faultStr)
	if err != nil {
		fatalf("%v", err)
	}
	var inj *smartbalance.FaultInjector
	if !plan.IsZero() {
		// Same seed derivation as the sweep engine: the run seed xor a
		// fixed tag, decorrelating the fault stream from the kernel's.
		if inj, err = smartbalance.NewFaultInjector(plan, *seed^faultSeedTag); err != nil {
			fatalf("%v", err)
		}
		cfg.Faults = inj
	}
	sys, err := smartbalance.NewSystemWithConfig(plat, bal, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	var rec *smartbalance.TraceRecorder
	if *traceN > 0 {
		if rec, err = sys.EnableTrace(1 << 18); err != nil {
			fatalf("%v", err)
		}
	}
	var tel *smartbalance.TelemetryCollector
	if *telPath != "" {
		tel = sys.EnableTelemetry(smartbalance.TelemetryConfig{})
		tel.SetMeta("platform", *platName)
		tel.SetMeta("workload", *wl)
		tel.SetMeta("threads", strconv.Itoa(*threads))
		tel.SetMeta("seed", strconv.FormatUint(*seed, 10))
		tel.SetMeta("dur_ms", strconv.FormatInt(*durMs, 10))
		if *faultStr != "" {
			tel.SetMeta("fault", *faultStr)
		}
	}
	if err := sys.SpawnAll(specs); err != nil {
		fatalf("%v", err)
	}
	if err := sys.Run(time.Duration(*durMs) * time.Millisecond); err != nil {
		fatalf("%v", err)
	}
	st := sys.Stats()
	fmt.Printf("platform : %s\n", plat)
	fmt.Printf("workload : %s x %d threads (%d tasks)\n", *wl, *threads, len(specs))
	if inj != nil {
		fs := inj.Stats()
		fmt.Printf("faults   : %s -> drops=%d stale=%d corrupt=%d powerdrop=%d powerspike=%d migfail=%d over %d epochs\n",
			plan, fs.Dropped, fs.Staled, fs.Corrupted, fs.PowerDrops, fs.PowerSpikes, fs.MigrateFails, fs.Epochs)
	}
	fmt.Print(st.String())
	fmt.Printf("energy efficiency: %.4g IPS/W (%.4g instructions/joule)\n",
		st.EnergyEfficiency(), st.EnergyEfficiency())
	if groups := st.ByBenchmark(); len(groups) > 1 {
		fmt.Println("per-benchmark:")
		for _, g := range groups {
			fmt.Printf("  %-16s tasks=%d run=%8.1fms instr=%9.3g ips=%.4g energy=%.4gJ\n",
				g.Benchmark, g.Tasks, float64(g.RunNs)/1e6, float64(g.Instr), g.IPS(st.SpanNs), g.EnergyJ)
		}
	}
	if *perTask {
		for _, ts := range st.Tasks {
			fmt.Printf("  task %-24s state=%-8s run=%7.1fms instr=%.3g migrations=%d\n",
				ts.Name, ts.State, float64(ts.RunNs)/1e6, float64(ts.Instr), ts.Migrations)
		}
	}
	if rec != nil {
		fmt.Print(rec.Summary())
		fmt.Printf("last %d events:\n", *traceN)
		if err := rec.Dump(os.Stdout, *traceN); err != nil {
			fatalf("trace dump: %v", err)
		}
	}
	if tel != nil {
		if inj != nil {
			fs := inj.Stats()
			tel.Counter("fault_dropped_total").Add(int64(fs.Dropped))
			tel.Counter("fault_staled_total").Add(int64(fs.Staled))
			tel.Counter("fault_corrupted_total").Add(int64(fs.Corrupted))
			tel.Counter("fault_power_drops_total").Add(int64(fs.PowerDrops))
			tel.Counter("fault_power_spikes_total").Add(int64(fs.PowerSpikes))
			tel.Counter("fault_migrate_fails_total").Add(int64(fs.MigrateFails))
		}
		f, err := os.Create(*telPath)
		if err != nil {
			fatalf("telemetry: %v", err)
		}
		if err := smartbalance.WriteTelemetryJSONL(f, tel.Trace()); err != nil {
			fatalf("telemetry: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("telemetry: %v", err)
		}
		tr := tel.Trace()
		fmt.Printf("telemetry: %d epochs, %d metrics, %d anomalies -> %s\n",
			len(tr.Epochs), len(tr.Metrics), len(tr.Anomalies), *telPath)
	}
}

// faultSeedTag matches the sweep engine's injector-seed derivation, so
// `sbsim -fault ... -seed N` and a sweep cell with the same plan and
// seed inject the identical fault sequence.
const faultSeedTag = 0xFA_17_1A_9E_5D

func parsePlatform(s string) (*smartbalance.Platform, error) {
	switch {
	case s == "quad":
		return smartbalance.QuadHMP(), nil
	case s == "biglittle":
		return smartbalance.OctaBigLittle(), nil
	case strings.HasPrefix(s, "scaling:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "scaling:"))
		if err != nil {
			return nil, fmt.Errorf("bad scaling core count: %v", err)
		}
		return smartbalance.ScalingHMP(n)
	}
	return nil, fmt.Errorf("unknown platform %q (quad | biglittle | scaling:<n>)", s)
}

func parseWorkload(s string, threads int, seed uint64) ([]smartbalance.ThreadSpec, error) {
	if strings.HasPrefix(s, "imb:") {
		code := strings.TrimPrefix(s, "imb:")
		// Accept both "HTMI" and "HM" forms.
		code = strings.ReplaceAll(strings.ReplaceAll(code, "T", ""), "I", "")
		if len(code) != 2 {
			return nil, fmt.Errorf("bad IMB code %q (want e.g. HTMI)", s)
		}
		tl, err := parseLevel(code[:1])
		if err != nil {
			return nil, err
		}
		il, err := parseLevel(code[1:])
		if err != nil {
			return nil, err
		}
		return smartbalance.IMB(tl, il, threads, seed)
	}
	for _, m := range smartbalance.MixNames() {
		if m == s {
			return smartbalance.Mix(s, threads, seed)
		}
	}
	return smartbalance.Benchmark(s, threads, seed)
}

func parseLevel(s string) (smartbalance.Level, error) {
	switch strings.ToUpper(s) {
	case "H":
		return smartbalance.High, nil
	case "M":
		return smartbalance.Medium, nil
	case "L":
		return smartbalance.Low, nil
	}
	return 0, fmt.Errorf("unknown level %q", s)
}

func parseBalancer(s string, plat *smartbalance.Platform, seed uint64) (smartbalance.Balancer, error) {
	switch s {
	case "smartbalance":
		return smartbalance.TrainSmartBalance(plat.Types, seed)
	case "vanilla":
		return smartbalance.NewVanillaBalancer(), nil
	case "gts":
		return smartbalance.NewGTSBalancer(plat)
	case "iks":
		return smartbalance.NewIKSBalancer(plat)
	case "pinned":
		return smartbalance.NewPinnedBalancer(), nil
	}
	return nil, fmt.Errorf("unknown balancer %q", s)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sbsim: "+format+"\n", args...)
	os.Exit(1)
}
