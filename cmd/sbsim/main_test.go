package main

import (
	"testing"

	"smartbalance"
)

func TestParsePlatform(t *testing.T) {
	p, err := parsePlatform("quad")
	if err != nil || p.NumCores() != 4 {
		t.Fatalf("quad: %v", err)
	}
	p, err = parsePlatform("biglittle")
	if err != nil || p.NumCores() != 8 {
		t.Fatalf("biglittle: %v", err)
	}
	p, err = parsePlatform("scaling:12")
	if err != nil || p.NumCores() != 12 {
		t.Fatalf("scaling: %v", err)
	}
	for _, bad := range []string{"", "mega", "scaling:", "scaling:x", "scaling:0"} {
		if _, err := parsePlatform(bad); err == nil {
			t.Errorf("platform %q accepted", bad)
		}
	}
}

func TestParseWorkload(t *testing.T) {
	specs, err := parseWorkload("Mix3", 2, 1)
	if err != nil || len(specs) != 4 { // 2 benchmarks x 2 threads
		t.Fatalf("Mix3: %d specs, %v", len(specs), err)
	}
	specs, err = parseWorkload("canneal", 3, 1)
	if err != nil || len(specs) != 3 {
		t.Fatalf("canneal: %v", err)
	}
	specs, err = parseWorkload("imb:HTMI", 2, 1)
	if err != nil || len(specs) != 2 {
		t.Fatalf("imb:HTMI: %v", err)
	}
	// Short IMB form.
	if _, err := parseWorkload("imb:LM", 1, 1); err != nil {
		t.Fatalf("imb:LM: %v", err)
	}
	for _, bad := range []string{"nope", "imb:", "imb:XTMI", "imb:HTMIX"} {
		if _, err := parseWorkload(bad, 2, 1); err == nil {
			t.Errorf("workload %q accepted", bad)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]smartbalance.Level{
		"H": smartbalance.High, "m": smartbalance.Medium, "L": smartbalance.Low,
	} {
		got, err := parseLevel(s)
		if err != nil || got != want {
			t.Fatalf("parseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseLevel("z"); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestParseBalancer(t *testing.T) {
	quad := smartbalance.QuadHMP()
	bl := smartbalance.OctaBigLittle()
	if b, err := parseBalancer("vanilla", quad, 1); err != nil || b.Name() != "vanilla-linux" {
		t.Fatalf("vanilla: %v", err)
	}
	if b, err := parseBalancer("pinned", quad, 1); err != nil || b.Name() != "pinned" {
		t.Fatalf("pinned: %v", err)
	}
	if b, err := parseBalancer("gts", bl, 1); err != nil || b.Name() != "arm-gts" {
		t.Fatalf("gts: %v", err)
	}
	if b, err := parseBalancer("iks", bl, 1); err != nil || b.Name() != "linaro-iks" {
		t.Fatalf("iks: %v", err)
	}
	if b, err := parseBalancer("smartbalance", quad, 1); err != nil || b.Name() != "smartbalance" {
		t.Fatalf("smartbalance: %v", err)
	}
	if _, err := parseBalancer("gts", quad, 1); err == nil {
		t.Fatal("gts on quad accepted")
	}
	if _, err := parseBalancer("nope", quad, 1); err == nil {
		t.Fatal("unknown balancer accepted")
	}
}
