package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI drives the full binary flow and returns stdout.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("sbfleet %v exited %d: %s", args, code, stderr.String())
	}
	return stdout.String()
}

func TestRunReportsHeadline(t *testing.T) {
	out := runCLI(t, "-nodes", "2", "-dur", "100", "-seed", "3", "-arrival", "uniform:rate=200")
	if !strings.Contains(out, "headline policy=energy nodes=2") {
		t.Errorf("missing headline line in output:\n%s", out)
	}
	if !strings.Contains(out, "joules/request") || !strings.Contains(out, "p99=") {
		t.Errorf("missing energy/latency report in output:\n%s", out)
	}
}

func TestCompareRunsEveryPolicy(t *testing.T) {
	out := runCLI(t, "-nodes", "2", "-dur", "100", "-seed", "3", "-compare")
	for _, pol := range []string{"rr", "least", "energy"} {
		if !strings.Contains(out, "headline policy="+pol+" ") {
			t.Errorf("compare output missing %s headline:\n%s", pol, out)
		}
	}
}

func TestStdoutAndTelemetryIdenticalAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	telA := filepath.Join(dir, "a.jsonl")
	telB := filepath.Join(dir, "b.jsonl")
	outA := runCLI(t, "-nodes", "4", "-dur", "100", "-seed", "7", "-arrival", "bursty",
		"-workers", "1", "-telemetry", telA)
	outB := runCLI(t, "-nodes", "4", "-dur", "100", "-seed", "7", "-arrival", "bursty",
		"-workers", "8", "-telemetry", telB)
	if outA != outB {
		t.Errorf("stdout differs between -workers 1 and 8:\n%s\nvs\n%s", outA, outB)
	}
	a, err := os.ReadFile(telA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(telB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("telemetry JSONL differs between -workers 1 and 8")
	}
	if len(a) == 0 {
		t.Error("telemetry export is empty")
	}
}

func TestBadFlagsFail(t *testing.T) {
	cases := [][]string{
		{"-policy", "random"},
		{"-arrival", "storm"},
		{"-nodes", "0"},
		{"-classes", "video"},
		{"-compare", "-telemetry", "x.jsonl"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code == 0 {
			t.Errorf("sbfleet %v succeeded, want failure", args)
		}
	}
}
