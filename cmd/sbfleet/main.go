// Command sbfleet runs the fleet tier: N simulated MPSoC nodes behind
// an energy-aware L4-style dispatcher serving an open-loop request
// stream, and reports fleet-level joules per request and latency
// percentiles.
//
// Usage:
//
//	sbfleet -nodes 8 -policy energy -arrival bursty -seed 7
//	sbfleet -nodes 8 -arrival "bursty:rate=300,burst=6,pburst=0.08,pcalm=0.25" -compare
//	sbfleet -nodes 32 -policy least -arrival diurnal -workers 8 -telemetry fleet.jsonl
//
// The canonical report — the per-run summary and `headline` lines — is
// a pure function of the flags minus -workers: a fixed seed produces
// byte-identical stdout and telemetry JSONL for any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"smartbalance"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus os.Exit, so tests can drive the full binary flow.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sbfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := smartbalance.DefaultFleetConfig()
	var (
		nodes    = fs.Int("nodes", def.Nodes, "fleet size")
		profile  = fs.String("profile", def.Profile, "comma-separated node platforms, cycled (quad | biglittle | scaling:<n>)")
		balancer = fs.String("balancer", def.Balancer, "intra-node balancer: smartbalance | vanilla | gts | iks | pinned")
		policy   = fs.String("policy", def.Policy, "dispatch policy: rr | least | energy")
		arrival  = fs.String("arrival", def.Arrival, `arrival spec: uniform | diurnal | bursty, with optional params ("bursty:rate=300,burst=6")`)
		classes  = fs.String("classes", def.Classes, "comma-separated request-class mix")
		seed     = fs.Uint64("seed", def.Seed, "fleet seed; reproduces the whole run")
		durMs    = fs.Int64("dur", def.DurationNs/1e6, "admission window in simulated milliseconds")
		tickMs   = fs.Int64("tick", def.TickNs/1e6, "dispatch tick in simulated milliseconds")
		drainMs  = fs.Int64("drain", 0, "post-admission drain bound in milliseconds (0 = same as -dur)")
		workers  = fs.Int("workers", 1, "node-stepping worker pool (never changes any output, only wall-clock)")
		perNode  = fs.Bool("pernode", false, "also print per-node statistics")
		compare  = fs.Bool("compare", false, "run every dispatch policy on the identical stream and compare")
		telPath  = fs.String("telemetry", "", "write the fleet telemetry trace (canonical JSONL) to this file")
	)
	if err := fs.Parse(argv); err != nil {
		return 1
	}
	cfg := smartbalance.FleetConfig{
		Nodes:      *nodes,
		Profile:    *profile,
		Balancer:   *balancer,
		Policy:     *policy,
		Arrival:    *arrival,
		Classes:    *classes,
		Seed:       *seed,
		DurationNs: *durMs * 1e6,
		TickNs:     *tickMs * 1e6,
		DrainNs:    *drainMs * 1e6,
		Workers:    *workers,
		Telemetry:  *telPath != "",
	}
	if *compare {
		if *telPath != "" {
			fmt.Fprintln(stderr, "sbfleet: -telemetry composes with single-policy runs only, not -compare")
			return 1
		}
		return runCompare(cfg, *perNode, stdout, stderr)
	}
	res, tel, err := runOne(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "sbfleet: %v\n", err)
		return 1
	}
	printResult(stdout, res, *perNode)
	fmt.Fprintln(stdout, headline(res))
	if *telPath != "" {
		if err := writeTelemetry(*telPath, tel); err != nil {
			fmt.Fprintf(stderr, "sbfleet: telemetry: %v\n", err)
			return 1
		}
		tr := tel.Trace()
		fmt.Fprintf(stderr, "sbfleet: telemetry: %d epochs, %d metrics -> %s\n",
			len(tr.Epochs), len(tr.Metrics), *telPath)
	}
	return 0
}

// runOne executes a single fleet run.
func runOne(cfg smartbalance.FleetConfig) (*smartbalance.FleetResult, *smartbalance.TelemetryCollector, error) {
	f, err := smartbalance.NewFleet(cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := f.Run()
	if err != nil {
		return nil, nil, err
	}
	return res, f.Telemetry(), nil
}

// runCompare runs every dispatch policy over the identical arrival
// stream and prints the results side by side, energy-aware last.
func runCompare(cfg smartbalance.FleetConfig, perNode bool, stdout, stderr io.Writer) int {
	fmt.Fprintf(stdout, "policy comparison: nodes=%d profile=%s arrival=%s seed=%d dur=%dms\n\n",
		cfg.Nodes, cfg.Profile, cfg.Arrival, cfg.Seed, cfg.DurationNs/1e6)
	var base *smartbalance.FleetResult
	for _, pol := range []string{"rr", "least", "energy"} {
		c := cfg
		c.Policy = pol
		res, _, err := runOne(c)
		if err != nil {
			fmt.Fprintf(stderr, "sbfleet: %s: %v\n", pol, err)
			return 1
		}
		if pol == "rr" {
			base = res
		}
		rel := ""
		if base.JoulesPerRequest > 0 && pol != "rr" {
			rel = fmt.Sprintf("  (%+.1f%% vs rr)", 100*(res.JoulesPerRequest-base.JoulesPerRequest)/base.JoulesPerRequest)
		}
		fmt.Fprintf(stdout, "%-7s joules/request=%-10.5g p50=%7.2fms p99=%7.2fms max=%7.2fms completed=%d/%d%s\n",
			pol, res.JoulesPerRequest, res.P50Ms, res.P99Ms, res.MaxMs, res.Completed, res.Requests, rel)
		if perNode {
			printPerNode(stdout, res)
		}
		fmt.Fprintln(stdout, headline(res))
	}
	return 0
}

// printResult renders the standard single-run report.
func printResult(w io.Writer, res *smartbalance.FleetResult, perNode bool) {
	fmt.Fprintf(w, "fleet    : %d nodes, policy=%s\n", res.Nodes, res.Policy)
	fmt.Fprintf(w, "arrival  : %s\n", res.Arrival)
	fmt.Fprintf(w, "requests : admitted=%d completed=%d inflight=%d over %dms (+%dms drain)\n",
		res.Requests, res.Completed, res.InFlight, res.DurationNs/1e6, (res.ElapsedNs-res.DurationNs)/1e6)
	fmt.Fprintf(w, "energy   : %.5gJ total, %.5g joules/request\n", res.EnergyJ, res.JoulesPerRequest)
	fmt.Fprintf(w, "latency  : p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		res.P50Ms, res.P95Ms, res.P99Ms, res.MaxMs)
	if perNode {
		printPerNode(w, res)
	}
}

// printPerNode renders the per-node breakdown.
func printPerNode(w io.Writer, res *smartbalance.FleetResult) {
	for i := range res.PerNode {
		n := &res.PerNode[i]
		fmt.Fprintf(w, "  node %2d %-10s requests=%-4d completed=%-4d energy=%8.4gJ j/req=%-9.4g p99~%.2fms\n",
			n.ID, n.Platform, n.Requests, n.Completed, n.EnergyJ, n.JoulesPerRequest, n.P99Ms)
	}
}

// headline renders the machine-readable result line scripts parse
// (scripts/fleet_check.sh greps for it); floats use the shortest exact
// rendering so the line is byte-stable.
func headline(res *smartbalance.FleetResult) string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return fmt.Sprintf("headline policy=%s nodes=%d requests=%d completed=%d inflight=%d jpr=%s p50_ms=%s p99_ms=%s max_ms=%s energy_j=%s",
		res.Policy, res.Nodes, res.Requests, res.Completed, res.InFlight,
		g(res.JoulesPerRequest), g(res.P50Ms), g(res.P99Ms), g(res.MaxMs), g(res.EnergyJ))
}

// writeTelemetry exports the fleet telemetry as canonical JSONL.
func writeTelemetry(path string, tel *smartbalance.TelemetryCollector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = smartbalance.WriteTelemetryJSONL(f, tel.Trace())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
