package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"smartbalance/internal/analysis"
)

const norandFixture = "../../internal/analysis/testdata/src/norand"

func TestRunFlagsFixtureViolations(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{norandFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d on fixture corpus, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "norand: import of math/rand") {
		t.Errorf("missing norand diagnostic in output:\n%s", out.String())
	}
}

func TestRunAnalyzerDisableFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-norand=false", "-seedflow=false", norandFixture}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d with norand+seedflow disabled, want 0 (out: %s, stderr: %s)",
			code, out.String(), errb.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", norandFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, out.String())
	}
	if len(diags) == 0 || diags[0].Analyzer == "" || diags[0].Line == 0 {
		t.Errorf("JSON diagnostics incomplete: %+v", diags)
	}
}

func TestRunBadPattern(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Errorf("exit %d on bad pattern, want 2", code)
	}
}
