package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"smartbalance/internal/analysis"
)

const norandFixture = "../../internal/analysis/testdata/src/norand"

func TestRunFlagsFixtureViolations(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{norandFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d on fixture corpus, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "norand: import of math/rand") {
		t.Errorf("missing norand diagnostic in output:\n%s", out.String())
	}
}

func TestRunAnalyzerDisableFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-norand=false", "-seedflow=false", norandFixture}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d with norand+seedflow disabled, want 0 (out: %s, stderr: %s)",
			code, out.String(), errb.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", norandFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, out.String())
	}
	if len(diags) == 0 || diags[0].Analyzer == "" || diags[0].Line == 0 {
		t.Errorf("JSON diagnostics incomplete: %+v", diags)
	}
}

func TestRunBadPattern(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Errorf("exit %d on bad pattern, want 2", code)
	}
}

const hotpathFixture = "../../internal/analysis/testdata/src/hotpath"
const allowdupFixture = "../../internal/analysis/testdata/src/allowdup"

// TestRunAllowsText covers the -allows audit surface end to end: the
// hotpath fixture's one justified suppression is listed with its
// analyzer, reason, and count, and the run exits 0.
func TestRunAllowsText(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-allows", hotpathFixture}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "hotpath(fixture: demonstrates a justified suppression)") {
		t.Errorf("missing inventoried suppression in output:\n%s", s)
	}
	if !strings.Contains(s, "1 allow annotation(s)") {
		t.Errorf("missing inventory count in output:\n%s", s)
	}
}

// TestRunAllowsJSON pins the machine-readable inventory: -allows -json
// emits the AllowRecord array verbatim.
func TestRunAllowsJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-allows", "-json", hotpathFixture}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, errb.String())
	}
	var recs []analysis.AllowRecord
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		t.Fatalf("output is not an AllowRecord array: %v\n%s", err, out.String())
	}
	if len(recs) != 1 || recs[0].Analyzer != "hotpath" || recs[0].Reason == "" {
		t.Errorf("unexpected records: %+v", recs)
	}
}

// TestRunAllowsMalformedFails covers the staleness gate: an empty-reason
// annotation makes -allows exit 1 and name the problem on stderr.
func TestRunAllowsMalformedFails(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-allows", allowdupFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d on malformed annotation, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "malformed or stale annotation(s)") {
		t.Errorf("stderr does not flag the malformed annotation:\n%s", errb.String())
	}
}
