// Command sbvet runs the repository's determinism, scheduler-safety,
// and hot-path purity analyzers (internal/analysis) over package
// patterns.
//
// Usage:
//
//	sbvet ./...                 # whole repository (the CI gate)
//	sbvet -json ./internal/...  # machine-readable diagnostics
//	sbvet -floateq=false ./...  # disable one analyzer
//	sbvet -allows ./...         # inventory every //sbvet:allow annotation
//
// Exit status: 0 when clean, 1 when violations were found (or, under
// -allows, when malformed/stale annotations exist), 2 on usage or load
// errors. Suppress a single finding at its call site with an annotated
// reason, e.g.
//
//	t := time.Now() //sbvet:allow wallclock(host benchmark boundary)
//
// Mark a function as an epoch hot-path root with //sbvet:hotpath in its
// doc comment; the hotpath analyzer then checks its whole transitive
// call graph inside the module.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"smartbalance/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit results as JSON")
	allows := fs.Bool("allows", false, "inventory //sbvet:allow annotations instead of analyzing")
	all := analysis.All()
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "sbvet:", err)
		return 2
	}
	if *allows {
		return runAllows(cwd, patterns, *jsonOut, stdout, stderr)
	}
	var active []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	diags, err := analysis.Run(cwd, patterns, active)
	if err != nil {
		fmt.Fprintln(stderr, "sbvet:", err)
		return 2
	}
	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := encodeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "sbvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "sbvet: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// runAllows implements `sbvet -allows`: the suppression audit surface.
// Well-formed annotations are listed (text or JSON); malformed ones —
// including annotations naming analyzers that no longer exist — fail
// the run so stale suppressions cannot linger silently.
func runAllows(cwd string, patterns []string, jsonOut bool, stdout, stderr io.Writer) int {
	recs, bad, err := analysis.CollectAllows(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "sbvet:", err)
		return 2
	}
	if jsonOut {
		if recs == nil {
			recs = []analysis.AllowRecord{}
		}
		if err := encodeJSON(stdout, recs); err != nil {
			fmt.Fprintln(stderr, "sbvet:", err)
			return 2
		}
	} else {
		for _, r := range recs {
			fmt.Fprintf(stdout, "%s:%d: %s(%s)\n", r.File, r.Line, r.Analyzer, r.Reason)
		}
		fmt.Fprintf(stdout, "%d allow annotation(s)\n", len(recs))
	}
	if len(bad) > 0 {
		for _, d := range bad {
			fmt.Fprintln(stderr, d.String())
		}
		fmt.Fprintf(stderr, "sbvet: %d malformed or stale annotation(s)\n", len(bad))
		return 1
	}
	return 0
}

func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
