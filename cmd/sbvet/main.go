// Command sbvet runs the repository's determinism and scheduler-safety
// analyzers (internal/analysis) over package patterns.
//
// Usage:
//
//	sbvet ./...                 # whole repository (the CI gate)
//	sbvet -json ./internal/...  # machine-readable diagnostics
//	sbvet -floateq=false ./...  # disable one analyzer
//
// Exit status: 0 when clean, 1 when violations were found, 2 on usage
// or load errors. Suppress a single finding at its call site with
// an annotated reason, e.g.
//
//	t := time.Now() //sbvet:allow wallclock(host benchmark boundary)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"smartbalance/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	all := analysis.All()
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var active []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "sbvet:", err)
		return 2
	}
	diags, err := analysis.Run(cwd, patterns, active)
	if err != nil {
		fmt.Fprintln(stderr, "sbvet:", err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "sbvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "sbvet: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}
