package smartbalance

import (
	"bytes"
	"testing"
	"time"
)

// telemetryRun builds a SmartBalance system, runs it with telemetry
// (and optionally tracing) attached, and returns the pieces.
func telemetryRun(t *testing.T, seed uint64, withTrace bool) (*System, *TelemetryCollector, *TraceRecorder) {
	t.Helper()
	plat := QuadHMP()
	pred, err := TrainPredictor(plat.Types, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSmartBalanceConfig()
	cfg.Anneal.Seed = seed
	cfg.Clock = NewFakeClock(time.Microsecond)
	bal, err := NewSmartBalanceController(pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kcfg := DefaultKernelConfig()
	kcfg.Seed = seed
	sys, err := NewSystemWithConfig(plat, bal, kcfg)
	if err != nil {
		t.Fatal(err)
	}
	var rec *TraceRecorder
	if withTrace {
		if rec, err = sys.EnableTrace(1 << 16); err != nil {
			t.Fatal(err)
		}
	}
	tel := sys.EnableTelemetry(TelemetryConfig{})
	tel.SetMeta("seed", "s") // fixed label: seed differences must not touch the meta
	specs, err := Mix("Mix1", 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SpawnAll(specs); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(600 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return sys, tel, rec
}

func TestTelemetryFacadeEndToEnd(t *testing.T) {
	sys, tel, _ := telemetryRun(t, 1, false)
	if sys.Telemetry() != tel {
		t.Fatal("Telemetry() does not return the installed collector")
	}
	tr := tel.Trace()
	if len(tr.Epochs) == 0 {
		t.Fatal("no epochs collected")
	}
	phases := map[string]int{}
	for _, e := range tr.Epochs {
		for _, s := range e.Spans {
			phases[s.Phase]++
		}
	}
	for _, p := range []string{"sense", "predict", "decide", "migrate"} {
		if phases[p] == 0 {
			t.Errorf("no %q spans collected", p)
		}
	}
	if tr.Meta["balancer"] != "smartbalance" {
		t.Errorf("meta balancer = %q", tr.Meta["balancer"])
	}
	// Kernel counters flow through the adapter, and agree with RunStats.
	if got, want := tel.Counter("kernel_instructions_total").Value(), int64(sys.Stats().TotalInstructions()); got != want {
		t.Errorf("kernel_instructions_total = %d, stats say %d", got, want)
	}
	if tel.Counter("smartbalance_epochs_total").Value() == 0 {
		t.Error("controller metrics missing")
	}
}

// TestTelemetryDeterministic is the facade-level byte-identity check:
// same seed, same bytes; different seed, a localisable divergence.
func TestTelemetryDeterministic(t *testing.T) {
	export := func(seed uint64) []byte {
		_, tel, _ := telemetryRun(t, seed, false)
		var buf bytes.Buffer
		if err := WriteTelemetryJSONL(&buf, tel.Trace()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(1), export(1)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed telemetry exports differ")
	}
	c := export(2)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical telemetry (suspicious)")
	}
	ta, err := ReadTelemetryJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	tc, err := ReadTelemetryJSONL(bytes.NewReader(c))
	if err != nil {
		t.Fatal(err)
	}
	d := FirstTelemetryDivergence(ta, tc)
	if d == nil {
		t.Fatal("diff found no divergence between different-seed traces")
	}
	if d.Kind != "epoch" {
		t.Fatalf("divergence kind = %q, want the first divergent epoch, not %+v", d.Kind, d)
	}
}

// TestTraceAndTelemetryCompose is the multi-observer regression: -trace
// and -telemetry must not race for a single observer slot.
func TestTraceAndTelemetryCompose(t *testing.T) {
	_, tel, rec := telemetryRun(t, 1, true)
	if rec.TotalInstructions() == 0 {
		t.Fatal("trace recorder starved: telemetry stole the observer slot")
	}
	got := tel.Counter("kernel_instructions_total").Value()
	if got != int64(rec.TotalInstructions()) {
		t.Fatalf("collector saw %d instructions, recorder %d — observers see different streams",
			got, rec.TotalInstructions())
	}
	// And attaching telemetry twice replaces rather than double-counts.
	sys, tel2, rec2 := telemetryRun(t, 1, true)
	fresh := sys.EnableTelemetry(TelemetryConfig{})
	if err := sys.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sys.Telemetry() != fresh {
		t.Fatal("second EnableTelemetry did not install")
	}
	if fresh.Counter("kernel_events_total{kind=\"slice\"}").Value() == 0 {
		t.Fatal("replacement collector sees no events")
	}
	// The old collector must stop growing after replacement.
	before := tel2.Counter("kernel_instructions_total").Value()
	if err := sys.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if after := tel2.Counter("kernel_instructions_total").Value(); after != before {
		t.Fatalf("replaced collector still receiving events (%d -> %d)", before, after)
	}
	_ = rec2
}
