package smartbalance

import (
	"smartbalance/internal/fleet"
	"smartbalance/internal/workload"
)

// Fleet tier (DESIGN.md §13): many independent simulated MPSoC nodes
// behind an energy-aware L4-style dispatcher serving open-loop request
// traffic. The paper's sense-predict-balance loop runs within each
// node; the fleet adds the inter-node level, routing each request on
// per-node signals (estimated joules per request, queue depth, p99
// latency EWMA).

// FleetConfig describes one fleet run; a run is a pure function of it
// (minus Workers, which only changes wall-clock).
type FleetConfig = fleet.Config

// Fleet is one constructed fleet run.
type Fleet = fleet.Fleet

// FleetResult is the distilled outcome of a fleet run.
type FleetResult = fleet.Result

// FleetNodeStats is one node's distilled outcome.
type FleetNodeStats = fleet.NodeStats

// FleetRequest is one admitted unit of the open-loop request stream.
type FleetRequest = fleet.Request

// DispatchPolicy selects how the front dispatcher routes requests.
type DispatchPolicy = fleet.Policy

// Dispatch policies, re-exported.
const (
	// DispatchRoundRobin ignores all signals — the baseline.
	DispatchRoundRobin = fleet.PolicyRoundRobin
	// DispatchLeastLoaded routes to the fewest outstanding requests per
	// core.
	DispatchLeastLoaded = fleet.PolicyLeastLoad
	// DispatchEnergyAware routes to the cheapest estimated joules per
	// request, derated by load.
	DispatchEnergyAware = fleet.PolicyEnergy
)

// DefaultFleetConfig returns a small runnable fleet configuration.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// NewFleet validates the configuration and builds a fleet; call Run
// exactly once.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// ParseDispatchPolicy validates a dispatch-policy name
// (rr | least | energy).
func ParseDispatchPolicy(s string) (DispatchPolicy, error) { return fleet.ParsePolicy(s) }

// FleetArrival is an open-loop arrival process (uniform, diurnal, or
// bursty/MMPP).
type FleetArrival = fleet.Arrival

// RequestClasses lists the built-in request classes ("api", "page",
// "query") in canonical order.
func RequestClasses() []string { return workload.RequestClasses() }

// RequestSpec materialises one short-lived request thread of the named
// class, deterministically jittered by seed — the unit of work a fleet
// dispatcher admits per request.
func RequestSpec(class, name string, seed uint64) (ThreadSpec, error) {
	return workload.RequestSpec(class, name, seed)
}
