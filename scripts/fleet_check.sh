#!/usr/bin/env bash
# fleet_check.sh — the fleet-tier determinism and efficiency gate at
# the binary level, on the canned bursty scenario (8 nodes, MMPP
# arrivals, seed 7 — the same cell internal/fleet/fleet_test.go pins):
#
#   1. determinism: a fixed-seed sbfleet run must produce byte-identical
#      stdout and telemetry JSONL under -workers 1 and -workers 8 —
#      the parallel node-stepper must not leak scheduling order into
#      any output;
#   2. efficiency: the energy-aware dispatch policy must beat both
#      round-robin and least-loaded on joules per request on that same
#      scenario, with the latency trade-off (p99) reported alongside.
#
# Complements the in-package suite (internal/fleet/fleet_test.go),
# which attacks the same properties through the library API.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

args=(-nodes 8 -profile quad,biglittle -balancer smartbalance
      -arrival "bursty:rate=300,burst=6,pburst=0.08,pcalm=0.25"
      -dur 400 -seed 7)

go build -o "$tmp/sbfleet" ./cmd/sbfleet

# Gate 1: byte-identity across worker counts, stdout and telemetry.
"$tmp/sbfleet" "${args[@]}" -policy energy -workers 1 \
    -telemetry "$tmp/serial.jsonl" >"$tmp/serial.out" 2>/dev/null
"$tmp/sbfleet" "${args[@]}" -policy energy -workers 8 \
    -telemetry "$tmp/parallel.jsonl" >"$tmp/parallel.out" 2>/dev/null

if ! cmp -s "$tmp/serial.out" "$tmp/parallel.out"; then
    echo "fleet-check: sbfleet stdout differs between -workers 1 and -workers 8" >&2
    diff "$tmp/serial.out" "$tmp/parallel.out" >&2 || true
    exit 1
fi
if ! cmp -s "$tmp/serial.jsonl" "$tmp/parallel.jsonl"; then
    echo "fleet-check: telemetry JSONL differs between -workers 1 and -workers 8" >&2
    exit 1
fi
if [ ! -s "$tmp/serial.jsonl" ]; then
    echo "fleet-check: telemetry export is empty" >&2
    exit 1
fi

# Gate 2: energy-aware beats rr and least on joules/request.
"$tmp/sbfleet" "${args[@]}" -policy rr    >"$tmp/rr.out"
"$tmp/sbfleet" "${args[@]}" -policy least >"$tmp/least.out"

jpr() { awk '/^headline /{for(i=1;i<=NF;i++) if ($i ~ /^jpr=/) {sub(/^jpr=/,"",$i); print $i}}' "$1"; }
p99() { awk '/^headline /{for(i=1;i<=NF;i++) if ($i ~ /^p99_ms=/) {sub(/^p99_ms=/,"",$i); print $i}}' "$1"; }

jpr_energy=$(jpr "$tmp/serial.out")
jpr_rr=$(jpr "$tmp/rr.out")
jpr_least=$(jpr "$tmp/least.out")
p99_energy=$(p99 "$tmp/serial.out")

for v in "$jpr_energy" "$jpr_rr" "$jpr_least" "$p99_energy"; do
    if [ -z "$v" ]; then
        echo "fleet-check: failed to parse a headline line" >&2
        exit 1
    fi
done

if ! awk -v e="$jpr_energy" -v r="$jpr_rr" 'BEGIN { exit !(e + 0 < r + 0) }'; then
    echo "fleet-check: energy-aware policy ($jpr_energy J/req) does not beat round-robin ($jpr_rr J/req)" >&2
    exit 1
fi
if ! awk -v e="$jpr_energy" -v l="$jpr_least" 'BEGIN { exit !(e + 0 < l + 0) }'; then
    echo "fleet-check: energy-aware policy ($jpr_energy J/req) does not beat least-loaded ($jpr_least J/req)" >&2
    exit 1
fi

saved=$(awk -v e="$jpr_energy" -v r="$jpr_rr" 'BEGIN { printf "%.1f", 100 * (r - e) / r }')
echo "ok: fixed-seed sbfleet byte-identical under -workers 1 and 8;" \
     "energy policy ${jpr_energy} J/req beats rr ${jpr_rr} and least ${jpr_least} (-${saved}% vs rr, p99=${p99_energy}ms)"
