#!/usr/bin/env bash
# bench_check.sh — the BENCH_core.json gate: the committed benchmark
# record must exist, carry the sbbench-v1 schema with every required
# key (including the fleet-tier 8/32-node throughput points), and
# reflect the post-hotpath allocation contract (a telemetry-off epoch
# allocates nothing; an enabled one stays within the documented
# suppression budget). A stale pre-refactor file fails here, forcing
# `make bench` to be rerun after hot-path changes.
set -euo pipefail
cd "$(dirname "$0")/.."

f=BENCH_core.json
if [ ! -f "$f" ]; then
    echo "bench-check: $f missing; run scripts/bench.sh" >&2
    exit 1
fi

if ! grep -q '"schema": "sbbench-v1"' "$f"; then
    echo "bench-check: $f does not declare schema sbbench-v1" >&2
    exit 1
fi

for key in ns_per_epoch allocs_per_epoch ns_per_epoch_telemetry \
           allocs_per_epoch_telemetry ns_per_epoch_contended \
           allocs_per_epoch_contended scenarios_per_sec speedup_1024 \
           n8_requests_per_sec n8_ns_per_request \
           n32_requests_per_sec n32_ns_per_request \
           c256_t2560 c1024_t10240 c1024_t16384 c1024_t32768 \
           c1024_t49152 c1024_t65536; do
    if ! grep -Eq "\"$key\": [0-9]" "$f"; then
        echo "bench-check: $f missing numeric key \"$key\"" >&2
        exit 1
    fi
done

allocs_off=$(grep -m1 '"allocs_per_epoch":' "$f" | grep -Eo '[0-9.]+' | tail -1)
allocs_on=$(grep -m1 '"allocs_per_epoch_telemetry":' "$f" | grep -Eo '[0-9.]+' | tail -1)

if ! awk -v v="$allocs_off" 'BEGIN { exit !(v == 0) }'; then
    echo "bench-check: recorded telemetry-off allocs/epoch is $allocs_off, want 0 (stale file? rerun scripts/bench.sh)" >&2
    exit 1
fi
if ! awk -v v="$allocs_on" 'BEGIN { exit !(v <= 8) }'; then
    echo "bench-check: recorded telemetry-on allocs/epoch is $allocs_on, want <= 8 (stale file? rerun scripts/bench.sh)" >&2
    exit 1
fi

allocs_cont=$(grep -m1 '"allocs_per_epoch_contended":' "$f" | grep -Eo '[0-9.]+' | tail -1)
if ! awk -v v="$allocs_cont" 'BEGIN { exit !(v == 0) }'; then
    echo "bench-check: recorded contended allocs/epoch is $allocs_cont, want 0 (the contention term must stay off the allocator; rerun scripts/bench.sh)" >&2
    exit 1
fi

# Scale gate: the recorded 1024-core/65536-thread throughput must be at
# least 5x the frozen pre-refactor baseline recorded in the same file
# (scale.baseline_pre_scale). The generated layout puts the current
# value first and the baseline value last, so occurrence order is the
# section order.
scale_cur=$(grep '"c1024_t65536":' "$f" | head -1 | grep -Eo '[0-9]+' | tail -1)
scale_base=$(grep '"c1024_t65536":' "$f" | tail -1 | grep -Eo '[0-9]+' | tail -1)
if [ -z "$scale_cur" ] || [ -z "$scale_base" ] || [ "$scale_cur" = "$scale_base" ]; then
    echo "bench-check: $f scale section lacks distinct current and baseline c1024_t65536 entries" >&2
    exit 1
fi
if ! awk -v c="$scale_cur" -v b="$scale_base" 'BEGIN { exit !(c >= 5.0 * b) }'; then
    echo "bench-check: recorded 1024-core scale throughput $scale_cur simthreads/s is < 5x baseline $scale_base (rerun scripts/bench.sh 20x scale after kernel hot-path changes)" >&2
    exit 1
fi
speedup=$(awk -v c="$scale_cur" -v b="$scale_base" 'BEGIN { printf "%.2f", c / b }')

echo "ok: BENCH_core.json schema-valid (allocs/epoch off=$allocs_off on=$allocs_on; 1024-core scale ${speedup}x baseline)"
