#!/usr/bin/env bash
# sweep_check.sh — the sbsweep determinism + cache gate: run a small
# scenario grid twice against one cache directory. The warm rerun must
# be served entirely from the cache (exit 2 otherwise, via
# -expect-cached) and print byte-identical canonical output.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/sbsweep" ./cmd/sbsweep

args=(-platforms quad -balancers vanilla,pinned -workloads Mix1,swaptions
      -threads 2 -seeds 1-2 -dur 60 -cache "$tmp/cache" -json)

"$tmp/sbsweep" "${args[@]}" >"$tmp/cold.jsonl" 2>"$tmp/cold.log"
"$tmp/sbsweep" "${args[@]}" -expect-cached -telemetry "$tmp/warm.prom" \
    >"$tmp/warm.jsonl" 2>"$tmp/warm.log" || {
    echo "sweep-check: warm rerun was not fully cached:" >&2
    cat "$tmp/warm.log" >&2
    exit 1
}

if ! cmp -s "$tmp/cold.jsonl" "$tmp/warm.jsonl"; then
    echo "sweep-check: warm output diverged from cold:" >&2
    diff "$tmp/cold.jsonl" "$tmp/warm.jsonl" >&2 || true
    exit 1
fi

# The warm run's telemetry must agree: zero cache misses, every job
# served from the cache.
if ! grep -q '^sweep_cache_misses_total 0$' "$tmp/warm.prom"; then
    echo "sweep-check: telemetry reports cache misses on the warm run:" >&2
    grep '^sweep_cache' "$tmp/warm.prom" >&2 || cat "$tmp/warm.prom" >&2
    exit 1
fi
if grep -q '^sweep_jobs_executed_total [^0]' "$tmp/warm.prom"; then
    echo "sweep-check: telemetry reports executed jobs on the warm run:" >&2
    grep '^sweep_jobs' "$tmp/warm.prom" >&2
    exit 1
fi

echo "ok: cold and warm sweeps byte-identical, warm fully cache-served (telemetry: 0 misses)"
