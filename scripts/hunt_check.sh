#!/usr/bin/env bash
# hunt_check.sh — the adversarial-search gate at the binary level:
#
#   1. determinism: a fixed-seed sbhunt run must produce byte-identical
#      stdout and corpus files under -workers 1 and -workers 8, cold
#      and warm cache — the evaluation pool and the content-addressed
#      cache must not leak into the hunt log or the minimized genomes
#      (DESIGN.md §14);
#   2. yield: the corpus-generation configuration (seed 6) must keep
#      finding at least 3 distinct minimized counterexamples, so the
#      checked-in corpus stays reproducible from its recorded seed;
#   3. pinning: every checked-in counterexample in testdata/corpus must
#      still violate its recorded objective on replay — a behaviour
#      change that un-pins one fails CI instead of silently erasing a
#      known weakness.
#
# Complements the in-package suite (internal/hunt), which attacks the
# same properties through the library API.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# The corpus-generation configuration: testdata/corpus was produced by
# exactly this seed and budget (see DESIGN.md §14).
args=(-seed 6 -gens 6 -pop 16)

go build -o "$tmp/sbhunt" ./cmd/sbhunt

# Gate 1: byte-identity across worker counts and cache states.
"$tmp/sbhunt" "${args[@]}" -workers 1 -out "$tmp/corpus1" >"$tmp/serial.out"
"$tmp/sbhunt" "${args[@]}" -workers 8 -cache "$tmp/cache" -out "$tmp/corpus8" >"$tmp/cold.out"
"$tmp/sbhunt" "${args[@]}" -workers 8 -cache "$tmp/cache" -out "$tmp/corpus8w" >"$tmp/warm.out"

if ! cmp -s "$tmp/serial.out" "$tmp/cold.out"; then
    echo "hunt-check: sbhunt stdout differs between -workers 1 and -workers 8" >&2
    diff "$tmp/serial.out" "$tmp/cold.out" >&2 || true
    exit 1
fi
if ! cmp -s "$tmp/cold.out" "$tmp/warm.out"; then
    echo "hunt-check: sbhunt stdout differs between cold and warm cache" >&2
    diff "$tmp/cold.out" "$tmp/warm.out" >&2 || true
    exit 1
fi
if ! diff -r "$tmp/corpus1" "$tmp/corpus8" >/dev/null; then
    echo "hunt-check: corpus files differ between -workers 1 and -workers 8" >&2
    diff -r "$tmp/corpus1" "$tmp/corpus8" >&2 || true
    exit 1
fi

# Gate 2: the recorded seed still yields >= 3 distinct counterexamples.
found=$(ls "$tmp/corpus1" | wc -l)
if [ "$found" -lt 3 ]; then
    echo "hunt-check: seed 6 found only $found minimized counterexamples, want >= 3" >&2
    exit 1
fi

# Gate 3: every checked-in counterexample still reproduces.
if ! "$tmp/sbhunt" -replay testdata/corpus -workers 8 >"$tmp/replay.out"; then
    echo "hunt-check: checked-in corpus replay failed" >&2
    cat "$tmp/replay.out" >&2
    exit 1
fi

entries=$(ls testdata/corpus/*.json | wc -l)
echo "ok: fixed-seed sbhunt byte-identical under -workers 1 and 8, cold and warm cache;" \
     "seed 6 yields ${found} minimized counterexamples; all ${entries} pinned entries still violate"
