#!/usr/bin/env bash
# bench.sh — regenerate BENCH_core.json, the repo's performance
# trajectory record (ROADMAP item 2): the epoch hot-path cost in both
# telemetry states (ns/epoch, allocs/epoch), the sweep engine's
# scenario throughput (scenarios/sec), the fleet tier's request
# throughput (requests/sec and ns/request at 8 and 32 nodes), and the
# kernel-scale throughput section (simulated threads per wall second on
# 256/1024-core machines), plus the frozen pre-refactor baselines each
# contract was introduced against. Future PRs diff their numbers
# against the committed file.
#
# Usage: scripts/bench.sh [benchtime] [scale]
#   benchtime  -benchtime for the epoch pair (default 20x)
#   scale      also re-measure the kernel-scale section (minutes);
#              without it the committed scale section is carried
#              forward unchanged.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-20x}"
mode="${2:-}"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Hot-epoch pair: one replayed sense→predict→balance iteration.
go test -run '^$' -bench '^(BenchmarkEpochHot|BenchmarkEpochHotTelemetry|BenchmarkEpochHotContended)$' \
    -benchmem -benchtime "$benchtime" . >"$tmp/epoch.out"

# Sweep throughput: BenchmarkReplicateParallel replicates 4 seeds of F6
# per op on the full worker pool.
go test -run '^$' -bench '^BenchmarkReplicateParallel$' \
    -benchtime 2x . >"$tmp/sweep.out"

# Fleet throughput: full-kernel nodes behind the dispatcher on the
# canned bursty scenario, at the 8- and 32-node points.
go test -run '^$' -bench '^BenchmarkFleet$' \
    -benchtime 3x ./internal/fleet >"$tmp/fleet.out"

awk '
function field(line, n,   parts) { split(line, parts, /[ \t]+/); return parts[n] }
/^BenchmarkEpochHot-|^BenchmarkEpochHot / {
    ns_off = field($0, 3); allocs_off = field($0, 7)
}
/^BenchmarkEpochHotTelemetry/ {
    ns_on = field($0, 3); allocs_on = field($0, 7)
}
/^BenchmarkEpochHotContended/ {
    ns_cont = field($0, 3); allocs_cont = field($0, 7)
}
END {
    if (ns_off == "" || ns_on == "" || ns_cont == "") { print "bench.sh: missing epoch benchmark output" > "/dev/stderr"; exit 1 }
    printf "%s %s %s %s %s %s\n", ns_off, allocs_off, ns_on, allocs_on, ns_cont, allocs_cont
}' "$tmp/epoch.out" >"$tmp/epoch.vals"

awk '
/^BenchmarkReplicateParallel/ {
    ns = $3
}
END {
    if (ns == "") { print "bench.sh: missing sweep benchmark output" > "/dev/stderr"; exit 1 }
    # 4 scenarios (seeds) per benchmark op.
    printf "%.3f\n", 4.0 / (ns * 1e-9)
}' "$tmp/sweep.out" >"$tmp/sweep.vals"

# fleetmetric POINT UNIT: the value labelled UNIT on BenchmarkFleet/POINT.
fleetmetric() {
    awk -v point="BenchmarkFleet/$1" -v unit="$2" '
    index($1, point "-") == 1 || $1 == point {
        for (i = 1; i <= NF; i++) if ($i == unit) print $(i - 1)
    }' "$tmp/fleet.out"
}
fleet_n8_rps=$(fleetmetric n8 "req/s")
fleet_n8_ns=$(fleetmetric n8 "ns/request")
fleet_n32_rps=$(fleetmetric n32 "req/s")
fleet_n32_ns=$(fleetmetric n32 "ns/request")
for v in "$fleet_n8_rps" "$fleet_n8_ns" "$fleet_n32_rps" "$fleet_n32_ns"; do
    if [ -z "$v" ]; then
        echo "bench.sh: missing fleet benchmark output" >&2
        exit 1
    fi
done

read -r ns_off allocs_off ns_on allocs_on ns_cont allocs_cont <"$tmp/epoch.vals"
read -r scen_per_sec <"$tmp/sweep.vals"

# Kernel-scale section. The baseline block is frozen: it records the
# pre-refactor substrate (binary-heap event queue + map-based counter
# bank + linear runqueue scans, commit 4fa3716) measured with the
# identical benchmark harness on the same machine, and must not be
# regenerated — it is the denominator of the gated speedup.
scale_points="c256_t2560 c1024_t10240 c1024_t16384 c1024_t32768 c1024_t49152 c1024_t65536"
heap_points="c256_t2560 c1024_t16384"

# median: newline-separated numbers on stdin -> median on stdout.
median() {
    sort -n | awk '{ a[NR] = $1 }
END {
    if (NR == 0) { print "bench.sh: no samples for median" > "/dev/stderr"; exit 1 }
    if (NR % 2) print a[(NR + 1) / 2]
    else printf "%.0f\n", (a[NR / 2] + a[NR / 2 + 1]) / 2
}'
}

# metric BENCH point FILE: extract the simthreads/s samples of one
# benchmark's sub-point from go test -bench output.
metric() {
    awk -v bench="$1/$2" '$1 == bench {
        for (i = 1; i <= NF; i++) if ($i == "simthreads/s") print $(i - 1)
    }' "$3"
}

if [ "$mode" = "scale" ]; then
    # Three runs of every point; the recorded value is the median, which
    # is the only defensible statistic on a noisy shared machine.
    go test -run '^$' -bench 'BenchmarkKernelScale' -benchtime 3x -count 3 . >"$tmp/scale.out"
    {
        echo '  "scale": {'
        echo '    "simthreads_per_sec": {'
        sep=""
        for p in $scale_points; do
            v=$(metric BenchmarkKernelScale "$p" "$tmp/scale.out" | median)
            printf '%s      "%s": %s' "$sep" "$p" "$v"
            sep=$',\n'
        done
        printf '\n    },\n'
        echo '    "heap_same_binary_simthreads_per_sec": {'
        sep=""
        for p in $heap_points; do
            v=$(metric BenchmarkKernelScaleHeap "$p" "$tmp/scale.out" | median)
            printf '%s      "%s": %s' "$sep" "$p" "$v"
            sep=$',\n'
        done
        printf '\n    },\n'
        cur=$(metric BenchmarkKernelScale c1024_t65536 "$tmp/scale.out" | median)
        base=34861
        awk -v c="$cur" -v b="$base" 'BEGIN { printf "    \"speedup_1024\": %.2f,\n", c / b }'
        cat <<'BASE'
    "baseline_pre_scale": {
      "commit": "4fa3716",
      "note": "heap event queue + map counter bank + linear runqueue scans; identical harness and machine, medians of 3 runs",
      "simthreads_per_sec": {
        "c256_t2560": 19238,
        "c1024_t10240": 17228,
        "c1024_t16384": 16953,
        "c1024_t32768": 24945,
        "c1024_t49152": 31356,
        "c1024_t65536": 34861
      }
    }
  },
BASE
    } >"$tmp/scale.json"
else
    # Carry the committed scale section forward verbatim: the block from
    # the '"scale": {' line through its two-space closing brace.
    if [ ! -f BENCH_core.json ] ||
        ! sed -n '/^  "scale": {$/,/^  },$/p' BENCH_core.json >"$tmp/scale.json" ||
        [ ! -s "$tmp/scale.json" ]; then
        echo "bench.sh: BENCH_core.json has no scale section; run scripts/bench.sh $benchtime scale" >&2
        exit 1
    fi
fi

{
    cat <<EOF
{
  "schema": "sbbench-v1",
  "epoch": {
    "ns_per_epoch": $ns_off,
    "allocs_per_epoch": $allocs_off,
    "ns_per_epoch_telemetry": $ns_on,
    "allocs_per_epoch_telemetry": $allocs_on
  },
  "contention": {
    "ns_per_epoch_contended": $ns_cont,
    "allocs_per_epoch_contended": $allocs_cont
  },
  "sweep": {
    "scenarios_per_sec": $scen_per_sec
  },
  "fleet": {
    "n8_requests_per_sec": $fleet_n8_rps,
    "n8_ns_per_request": $fleet_n8_ns,
    "n32_requests_per_sec": $fleet_n32_rps,
    "n32_ns_per_request": $fleet_n32_ns
  },
EOF
    cat "$tmp/scale.json"
    cat <<'EOF'
  "baseline_pre_hotpath": {
    "ns_per_epoch": 729051,
    "allocs_per_epoch": 10774,
    "ns_per_epoch_telemetry": 969274,
    "allocs_per_epoch_telemetry": 10785
  }
}
EOF
} >BENCH_core.json

echo "ok: wrote BENCH_core.json"
cat BENCH_core.json
