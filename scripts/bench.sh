#!/usr/bin/env bash
# bench.sh — regenerate BENCH_core.json, the repo's performance
# trajectory record (ROADMAP item 2): the epoch hot-path cost in both
# telemetry states (ns/epoch, allocs/epoch) and the sweep engine's
# scenario throughput (scenarios/sec), plus the pre-refactor baseline
# the sbvet hotpath contract was introduced against. Future PRs diff
# their numbers against the committed file.
#
# Usage: scripts/bench.sh [benchtime]   (default 20x)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-20x}"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Hot-epoch pair: one replayed sense→predict→balance iteration.
go test -run '^$' -bench '^(BenchmarkEpochHot|BenchmarkEpochHotTelemetry)$' \
    -benchmem -benchtime "$benchtime" . >"$tmp/epoch.out"

# Sweep throughput: BenchmarkReplicateParallel replicates 4 seeds of F6
# per op on the full worker pool.
go test -run '^$' -bench '^BenchmarkReplicateParallel$' \
    -benchtime 2x . >"$tmp/sweep.out"

awk '
function field(line, n,   parts) { split(line, parts, /[ \t]+/); return parts[n] }
/^BenchmarkEpochHot-|^BenchmarkEpochHot / {
    ns_off = field($0, 3); allocs_off = field($0, 7)
}
/^BenchmarkEpochHotTelemetry/ {
    ns_on = field($0, 3); allocs_on = field($0, 7)
}
END {
    if (ns_off == "" || ns_on == "") { print "bench.sh: missing epoch benchmark output" > "/dev/stderr"; exit 1 }
    printf "%s %s %s %s\n", ns_off, allocs_off, ns_on, allocs_on
}' "$tmp/epoch.out" >"$tmp/epoch.vals"

awk '
/^BenchmarkReplicateParallel/ {
    ns = $3
}
END {
    if (ns == "") { print "bench.sh: missing sweep benchmark output" > "/dev/stderr"; exit 1 }
    # 4 scenarios (seeds) per benchmark op.
    printf "%.3f\n", 4.0 / (ns * 1e-9)
}' "$tmp/sweep.out" >"$tmp/sweep.vals"

read -r ns_off allocs_off ns_on allocs_on <"$tmp/epoch.vals"
read -r scen_per_sec <"$tmp/sweep.vals"

cat >BENCH_core.json <<EOF
{
  "schema": "sbbench-v1",
  "epoch": {
    "ns_per_epoch": $ns_off,
    "allocs_per_epoch": $allocs_off,
    "ns_per_epoch_telemetry": $ns_on,
    "allocs_per_epoch_telemetry": $allocs_on
  },
  "sweep": {
    "scenarios_per_sec": $scen_per_sec
  },
  "baseline_pre_hotpath": {
    "ns_per_epoch": 729051,
    "allocs_per_epoch": 10774,
    "ns_per_epoch_telemetry": 969274,
    "allocs_per_epoch_telemetry": 10785
  }
}
EOF

echo "ok: wrote BENCH_core.json"
cat BENCH_core.json
