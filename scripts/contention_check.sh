#!/usr/bin/env bash
# contention_check.sh — the contention-aware placement gate. Two
# fixed-seed runs of the A14 ablation must print byte-identical
# artefacts (modulo the operator-facing "(regenerated in ...)" timing
# line — the shared-LLC model is exactly as reproducible as the rest of
# the simulator), the model-off regime must show aware == blind
# bit-for-bit (ratio exactly 1: with the model disabled the aware
# controller must collapse to the paper-faithful objective), and on the
# antagonist mix the aware controller must beat its contention-blind
# twin on energy efficiency by a clear margin.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/smartbench" ./cmd/smartbench

args=(-run A14 -quick -dur 1200 -threads 2 -seed 7)
"$tmp/smartbench" "${args[@]}" | grep -v '(regenerated in' >"$tmp/a.txt"
"$tmp/smartbench" "${args[@]}" | grep -v '(regenerated in' >"$tmp/b.txt"

if ! cmp -s "$tmp/a.txt" "$tmp/b.txt"; then
    echo "contention-check: fixed-seed A14 reruns diverged:" >&2
    diff "$tmp/a.txt" "$tmp/b.txt" >&2 || true
    exit 1
fi

off=$(awk '/headline aware-over-blind-model-off:/ {print $3}' "$tmp/a.txt")
if [ "$off" != "1" ]; then
    echo "contention-check: model-off ratio '${off}' != 1 — aware and blind diverged with the contention model disabled" >&2
    cat "$tmp/a.txt" >&2
    exit 1
fi

ant=$(awk '/headline aware-over-blind-antagonist:/ {print $3}' "$tmp/a.txt")
if [ -z "$ant" ]; then
    echo "contention-check: aware-over-blind-antagonist headline missing from A14 output:" >&2
    cat "$tmp/a.txt" >&2
    exit 1
fi
if ! awk -v r="$ant" 'BEGIN { exit !(r >= 1.05) }'; then
    echo "contention-check: antagonist-mix gain ${ant}x < 1.05x — contention-aware placement is not paying for itself" >&2
    exit 1
fi

echo "ok: A14 deterministic across reruns; model-off aware==blind exactly; antagonist gain ${ant}x >= 1.05x"
