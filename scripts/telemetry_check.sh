#!/usr/bin/env bash
# telemetry_check.sh — the telemetry determinism gate, end to end
# through the real binaries:
#
#   1. one fixed-seed sbsim scenario run twice must export byte-identical
#      canonical JSONL (telemetry is a pure function of the seed);
#   2. sbtrace diff on the two same-seed traces must exit 0;
#   3. sbtrace diff against a different-seed trace must exit 1 and name
#      the first divergent epoch — the bisection contract.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/sbsim" ./cmd/sbsim
go build -o "$tmp/sbtrace" ./cmd/sbtrace

args=(-platform quad -workload Mix1 -threads 2 -balancer smartbalance -dur 400)

"$tmp/sbsim" "${args[@]}" -seed 1 -telemetry "$tmp/a.jsonl" >/dev/null
"$tmp/sbsim" "${args[@]}" -seed 1 -telemetry "$tmp/b.jsonl" >/dev/null
"$tmp/sbsim" "${args[@]}" -seed 2 -telemetry "$tmp/c.jsonl" >/dev/null

if ! cmp -s "$tmp/a.jsonl" "$tmp/b.jsonl"; then
    echo "telemetry-check: same-seed telemetry exports differ:" >&2
    diff "$tmp/a.jsonl" "$tmp/b.jsonl" >&2 || true
    exit 1
fi

if ! "$tmp/sbtrace" diff "$tmp/a.jsonl" "$tmp/b.jsonl" >"$tmp/same.out"; then
    echo "telemetry-check: sbtrace diff flagged identical traces:" >&2
    cat "$tmp/same.out" >&2
    exit 1
fi

set +e
"$tmp/sbtrace" diff "$tmp/a.jsonl" "$tmp/c.jsonl" >"$tmp/diff.out"
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    echo "telemetry-check: sbtrace diff on different seeds exited $rc, want 1" >&2
    cat "$tmp/diff.out" >&2
    exit 1
fi
if ! grep -q 'first divergent epoch' "$tmp/diff.out"; then
    echo "telemetry-check: diff output does not localise the divergence:" >&2
    cat "$tmp/diff.out" >&2
    exit 1
fi

echo "ok: same-seed telemetry byte-identical; $(cat "$tmp/diff.out")"
