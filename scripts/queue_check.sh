#!/usr/bin/env bash
# queue_check.sh — the calendar↔heap equivalence gate at the binary
# level: one fixed-seed sbsim scenario (SmartBalance controller, fault
# injection on, per-task stats) must produce byte-identical output under
# both event-queue implementations. Complements the in-package
# equivalence suite (internal/kernel/event_equiv_test.go), which attacks
# the queues directly with randomized streams.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

args=(-platform quad -workload Mix1 -threads 4 -balancer smartbalance
      -dur 800 -seed 7 -tasks -fault "drop=0.2;stale=0.1;migfail=0.2")

go run ./cmd/sbsim "${args[@]}" -queue calendar >"$tmp/calendar.out"
go run ./cmd/sbsim "${args[@]}" -queue heap     >"$tmp/heap.out"

if ! cmp -s "$tmp/calendar.out" "$tmp/heap.out"; then
    echo "queue-check: sbsim output differs between -queue calendar and -queue heap" >&2
    diff "$tmp/calendar.out" "$tmp/heap.out" >&2 || true
    exit 1
fi

echo "ok: fixed-seed sbsim byte-identical under calendar and heap event queues"
