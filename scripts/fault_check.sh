#!/usr/bin/env bash
# fault_check.sh — the fault-injection robustness gate. Two fixed-seed
# runs of the A13 ablation must print byte-identical artefacts (modulo
# the operator-facing "(regenerated in ...)" timing line — faulty runs
# are exactly as reproducible as clean ones), and the headline must
# show hardened SmartBalance holding at or above the counter-agnostic
# vanilla baseline under a total counter blackout.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/smartbench" ./cmd/smartbench

args=(-run A13 -quick -dur 400 -threads 2 -seed 7)
"$tmp/smartbench" "${args[@]}" | grep -v '(regenerated in' >"$tmp/a.txt"
"$tmp/smartbench" "${args[@]}" | grep -v '(regenerated in' >"$tmp/b.txt"

if ! cmp -s "$tmp/a.txt" "$tmp/b.txt"; then
    echo "fault-check: fixed-seed A13 reruns diverged:" >&2
    diff "$tmp/a.txt" "$tmp/b.txt" >&2 || true
    exit 1
fi

gain=$(awk '/headline gain-at-full-dropout:/ {print $3}' "$tmp/a.txt")
if [ -z "$gain" ]; then
    echo "fault-check: gain-at-full-dropout headline missing from A13 output:" >&2
    cat "$tmp/a.txt" >&2
    exit 1
fi
if ! awk -v g="$gain" 'BEGIN { exit !(g >= 0.999) }'; then
    echo "fault-check: blackout gain ${gain}x puts SmartBalance below vanilla" >&2
    exit 1
fi

echo "ok: A13 deterministic across reruns; blackout gain ${gain}x >= vanilla"
