#!/usr/bin/env bash
# check.sh — the full verification gate, run from anywhere in the repo.
# Mirrors what CI should run: formatting, go vet, the project's own
# sbvet determinism/safety analyzers, the build, and the race-enabled
# test suite. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== sbvet ./... (includes the hotpath hard gate: zero unsuppressed"
echo "   allocations reachable from //sbvet:hotpath roots)"
go run ./cmd/sbvet ./...

echo "== go build ./..."
go build ./...

echo "== sweep-check"
./scripts/sweep_check.sh

echo "== fault-check"
./scripts/fault_check.sh

echo "== queue-check"
./scripts/queue_check.sh

echo "== telemetry-check"
./scripts/telemetry_check.sh

echo "== fleet-check"
./scripts/fleet_check.sh

echo "== bench-check"
./scripts/bench_check.sh

echo "== hunt-check"
./scripts/hunt_check.sh

echo "== contention-check"
./scripts/contention_check.sh

echo "== go test -race ./..."
go test -race ./...

echo "ok: all checks passed"
