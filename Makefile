# Convenience targets; scripts/check.sh is the canonical gate.

.PHONY: build test race vet sbvet sweep-check fault-check telemetry-check fleet-check bench bench-check hunt-check contention-check check

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

sbvet:
	go run ./cmd/sbvet ./...

sweep-check:
	./scripts/sweep_check.sh

fault-check:
	./scripts/fault_check.sh

telemetry-check:
	./scripts/telemetry_check.sh

fleet-check:
	./scripts/fleet_check.sh

bench:
	./scripts/bench.sh

bench-check:
	./scripts/bench_check.sh

hunt-check:
	./scripts/hunt_check.sh

contention-check:
	./scripts/contention_check.sh

check:
	./scripts/check.sh
