# Convenience targets; scripts/check.sh is the canonical gate.

.PHONY: build test race vet sbvet check

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

sbvet:
	go run ./cmd/sbvet ./...

check:
	./scripts/check.sh
