// big.LITTLE: the paper's Section 6.1 comparison as an application.
// Runs PARSEC-like benchmarks on an octa-core big.LITTLE (4 big + 4
// little) under ARM GTS, Linaro IKS, and SmartBalance, printing the
// normalized energy efficiency of each policy (the Fig. 5 scenario).
package main

import (
	"fmt"
	"log"
	"time"

	"smartbalance"
)

func main() {
	const (
		threads = 4
		seed    = 3
		span    = 1500 * time.Millisecond
	)
	workloads := []string{"blackscholes", "bodytrack", "canneal", "swaptions", "Mix5"}

	type policy struct {
		name string
		mk   func(p *smartbalance.Platform) (smartbalance.Balancer, error)
	}
	policies := []policy{
		{"arm-gts", smartbalance.NewGTSBalancer},
		{"linaro-iks", smartbalance.NewIKSBalancer},
		{"smartbalance", func(p *smartbalance.Platform) (smartbalance.Balancer, error) {
			return smartbalance.TrainSmartBalance(p.Types, seed)
		}},
	}

	fmt.Printf("octa-core big.LITTLE (%s), %d threads per benchmark, %v per run\n\n",
		smartbalance.OctaBigLittle(), threads, span)
	fmt.Printf("%-14s %12s %12s %14s %12s\n", "workload", "gts", "iks", "smartbalance", "gain vs gts")

	for _, wl := range workloads {
		ee := map[string]float64{}
		for _, pol := range policies {
			plat := smartbalance.OctaBigLittle()
			bal, err := pol.mk(plat)
			if err != nil {
				log.Fatalf("%s: %v", pol.name, err)
			}
			sys, err := smartbalance.NewSystem(plat, bal)
			if err != nil {
				log.Fatal(err)
			}
			specs, err := makeWorkload(wl, threads, seed)
			if err != nil {
				log.Fatal(err)
			}
			if err := sys.SpawnAll(specs); err != nil {
				log.Fatal(err)
			}
			if err := sys.Run(span); err != nil {
				log.Fatal(err)
			}
			ee[pol.name] = sys.Stats().EnergyEfficiency()
		}
		base := ee["arm-gts"]
		fmt.Printf("%-14s %12.4g %12.4g %14.4g %11.2fx\n",
			wl, ee["arm-gts"], ee["linaro-iks"], ee["smartbalance"], ee["smartbalance"]/base)
	}
	fmt.Println("\npaper: GTS's utilisation-only, two-class decisions cost it ~20% vs SmartBalance (Fig. 5)")
}

func makeWorkload(name string, threads int, seed uint64) ([]smartbalance.ThreadSpec, error) {
	for _, m := range smartbalance.MixNames() {
		if m == name {
			return smartbalance.Mix(name, threads, seed)
		}
	}
	return smartbalance.Benchmark(name, threads, seed)
}
