// Constraints: demonstrates the two constraint mechanisms layered on
// SmartBalance — CPU-affinity masks (hard constraints the optimiser
// must honour) and thermal-aware weight derating (soft constraints that
// steer work off hot cores). A latency-critical thread is pinned to the
// Big core while background work floats, and the thermal wrapper keeps
// the die below its derating threshold.
package main

import (
	"fmt"
	"log"
	"time"

	"smartbalance"
)

func main() {
	const seed = 13
	plat := smartbalance.QuadHMP()

	ctrl, tracker, err := smartbalance.NewThermalSmartBalance(plat, seed)
	if err != nil {
		log.Fatal(err)
	}
	ctrl.DerateAboveC = 55
	ctrl.CriticalC = 70

	sys, err := smartbalance.NewSystem(plat, ctrl)
	if err != nil {
		log.Fatal(err)
	}

	// A latency-critical control thread, pinned to the Big core (id 1).
	critical, err := smartbalance.NewWorkload("control-loop").
		Compute(8e6, 2.4).
		Sleep(4*time.Millisecond).
		Workers(1, seed)
	if err != nil {
		log.Fatal(err)
	}
	critID, err := sys.Spawn(&critical[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.SetAffinity(critID, []smartbalance.CoreID{1}); err != nil {
		log.Fatal(err)
	}

	// Background batch work, free to float wherever the optimiser wants.
	batch, err := smartbalance.Benchmark("fluidanimate", 4, seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.SpawnAll(batch); err != nil {
		log.Fatal(err)
	}

	if err := sys.Run(2 * time.Second); err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("constrained run on %s: %.4g IPS/W\n\n", plat, st.EnergyEfficiency())
	for _, ts := range st.Tasks {
		pin := ""
		if ts.ID == critID {
			pin = "  <- pinned to core 1"
		}
		fmt.Printf("  %-18s run=%7.1fms instr=%9.3g migrations=%d%s\n",
			ts.Name, float64(ts.RunNs)/1e6, float64(ts.Instr), ts.Migrations, pin)
	}
	fmt.Printf("\nper-core temperatures after 2s (ambient %.0fC):\n", 45.0)
	for j, temp := range tracker.Temps() {
		fmt.Printf("  core %d (%-6s): %.1fC\n", j, plat.Types[plat.TypeID(smartbalance.CoreID(j))].Name, temp)
	}
	fmt.Printf("peak seen: %.1fC (derating starts at %.0fC)\n", tracker.MaxSeen(), ctrl.DerateAboveC)
}
