// Custom: defines a bespoke workload with the builder API (a codec-like
// pipeline plus a background logger), runs it under SmartBalance with
// scheduling tracing enabled, and prints where the controller placed
// each behaviour class.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"smartbalance"
)

func main() {
	const seed = 8

	// A codec-like pipeline: high-ILP transform, memory-bound reference
	// lookups, and a per-frame pacing wait.
	codec, err := smartbalance.NewWorkload("codec").
		Compute(35e6, 3.2).
		Memory(18e6, 768).
		Sleep(2*time.Millisecond).
		Workers(3, seed)
	if err != nil {
		log.Fatal(err)
	}
	// A background logger: branchy, bursty, mostly asleep.
	logger, err := smartbalance.NewWorkload("logger").
		Branchy(3e6, 0.7).
		Sleep(25*time.Millisecond).
		Workers(2, seed+1)
	if err != nil {
		log.Fatal(err)
	}

	plat := smartbalance.QuadHMP()
	ctrl, err := smartbalance.TrainSmartBalance(plat.Types, seed)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := smartbalance.NewSystem(plat, ctrl)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := sys.EnableTrace(1 << 16)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.SpawnAll(codec); err != nil {
		log.Fatal(err)
	}
	if err := sys.SpawnAll(logger); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(1500 * time.Millisecond); err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("custom workload on %s: %.4g IPS at %.3f W -> %.4g IPS/W\n\n",
		plat, st.IPS(), st.PowerW(), st.EnergyEfficiency())
	fmt.Println("per-task placement after 1.5s:")
	for _, ts := range st.Tasks {
		fmt.Printf("  %-12s run=%7.1fms instr=%9.3g migrations=%d\n",
			ts.Name, float64(ts.RunNs)/1e6, float64(ts.Instr), ts.Migrations)
	}
	fmt.Println()
	fmt.Print(rec.Summary())
	fmt.Println("last 8 scheduling events:")
	if err := rec.Dump(os.Stdout, 8); err != nil {
		log.Fatal(err)
	}
}
