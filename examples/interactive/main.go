// Interactive: sweeps the paper's interactive-microbenchmark (IMB)
// grid — throughput x interactivity in {high, medium, low}² — on the
// 4-type HMP and prints SmartBalance's energy-efficiency gain over the
// vanilla Linux balancer for each configuration (the Fig. 4(a)
// scenario as an application).
package main

import (
	"fmt"
	"log"
	"time"

	"smartbalance"
)

func main() {
	const (
		threads = 4
		seed    = 2
		span    = time.Second
	)
	levels := []smartbalance.Level{smartbalance.High, smartbalance.Medium, smartbalance.Low}

	fmt.Printf("IMB grid on %s, %d threads, %v per run\n\n", smartbalance.QuadHMP(), threads, span)
	fmt.Printf("%-8s %14s %18s %8s\n", "config", "vanilla IPS/W", "smartbalance IPS/W", "gain")

	smartCtor := func(p *smartbalance.Platform) (smartbalance.Balancer, error) {
		return smartbalance.TrainSmartBalance(p.Types, seed)
	}
	vanillaCtor := func(*smartbalance.Platform) (smartbalance.Balancer, error) {
		return smartbalance.NewVanillaBalancer(), nil
	}

	var sumGain float64
	var n int
	for _, tl := range levels {
		for _, il := range levels {
			van := runIMB(tl, il, threads, seed, span, vanillaCtor)
			smart := runIMB(tl, il, threads, seed, span, smartCtor)
			gain := smart / van
			sumGain += gain
			n++
			fmt.Printf("%s%sT%sI %14.4g %18.4g %7.2fx\n", "", tl, il, van, smart, gain)
		}
	}
	fmt.Printf("\naverage gain %.2fx (paper: 50.02%% average improvement on the IMBs)\n", sumGain/float64(n))
}

func runIMB(tl, il smartbalance.Level, threads int, seed uint64, span time.Duration,
	mk func(p *smartbalance.Platform) (smartbalance.Balancer, error)) float64 {
	plat := smartbalance.QuadHMP()
	bal, err := mk(plat)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := smartbalance.NewSystem(plat, bal)
	if err != nil {
		log.Fatal(err)
	}
	specs, err := smartbalance.IMB(tl, il, threads, seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.SpawnAll(specs); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(span); err != nil {
		log.Fatal(err)
	}
	return sys.Stats().EnergyEfficiency()
}
