// Quickstart: build the paper's 4-type heterogeneous platform, run the
// same PARSEC-like mix under the vanilla Linux balancer and under
// SmartBalance, and compare energy efficiency (IPS/Watt).
package main

import (
	"fmt"
	"log"
	"time"

	"smartbalance"
)

func main() {
	const (
		mix     = "Mix1" // x264H-crew + x264H-bow (Table 3)
		threads = 4
		seed    = 1
		span    = 2 * time.Second
	)

	// One run per balancer, same platform and workload.
	run := func(name string, mk func(p *smartbalance.Platform) (smartbalance.Balancer, error)) *smartbalance.RunStats {
		plat := smartbalance.QuadHMP()
		bal, err := mk(plat)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		sys, err := smartbalance.NewSystem(plat, bal)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		specs, err := smartbalance.Mix(mix, threads, seed)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := sys.SpawnAll(specs); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := sys.Run(span); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		return sys.Stats()
	}

	vanilla := run("vanilla", func(*smartbalance.Platform) (smartbalance.Balancer, error) {
		return smartbalance.NewVanillaBalancer(), nil
	})
	smart := run("smartbalance", func(p *smartbalance.Platform) (smartbalance.Balancer, error) {
		return smartbalance.TrainSmartBalance(p.Types, seed)
	})

	fmt.Printf("workload %s x %d threads for %v on %s\n\n", mix, threads, span, smartbalance.QuadHMP())
	fmt.Printf("%-14s %12s %10s %14s\n", "balancer", "IPS", "power (W)", "IPS/W")
	for _, st := range []*smartbalance.RunStats{vanilla, smart} {
		fmt.Printf("%-14s %12.4g %10.3f %14.4g\n", st.Balancer, st.IPS(), st.PowerW(), st.EnergyEfficiency())
	}
	gain := smart.EnergyEfficiency() / vanilla.EnergyEfficiency()
	fmt.Printf("\nSmartBalance energy-efficiency gain: %.2fx (paper reports >1.5x on the 4-type HMP)\n", gain)

	fmt.Println("\nper-core view under SmartBalance:")
	for _, c := range smart.Cores {
		fmt.Printf("  core %d (%-6s): busy %6.1fms  sleep %6.1fms  %.3g instructions\n",
			c.Core, c.TypeName, float64(c.BusyNs)/1e6, float64(c.SleepNs)/1e6, float64(c.Instr))
	}
}
