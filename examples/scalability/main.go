// Scalability: walks heterogeneous platforms from 2 to 128 cores (2
// threads per core), runs a short SmartBalance-managed simulation at
// each scale, and reports throughput, energy efficiency, and the
// controller's measured per-epoch overhead — the Fig. 7 scenario as an
// application.
package main

import (
	"fmt"
	"log"
	"time"

	"smartbalance"
)

func main() {
	const (
		seed = 4
		span = 600 * time.Millisecond
	)
	fmt.Printf("SmartBalance scalability walk (%v simulated per scale)\n\n", span)
	fmt.Printf("%6s %8s %14s %12s %14s %16s\n",
		"cores", "threads", "IPS", "power (W)", "IPS/W", "overhead/epoch")

	for n := 2; n <= 128; n *= 2 {
		plat, err := smartbalance.ScalingHMP(n)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := smartbalance.TrainPredictor(plat.Types, seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg := smartbalance.DefaultSmartBalanceConfig()
		cfg.Anneal.Seed = seed
		// Host time is injected here, at the application boundary — the
		// simulation packages themselves never read the wall clock
		// (sbvet's wallclock invariant), so the reported overhead/epoch
		// is a real measurement while everything else stays seeded.
		cfg.Clock = smartbalance.RealClock()
		ctrl, err := smartbalance.NewSmartBalanceController(pred, cfg)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := smartbalance.NewSystem(plat, ctrl)
		if err != nil {
			log.Fatal(err)
		}
		// 2 threads per core: one interactive and one busy stream per
		// pair, mixing PARSEC-like and IMB behaviour.
		half := n
		busy, err := smartbalance.Benchmark("fluidanimate", half, seed)
		if err != nil {
			log.Fatal(err)
		}
		inter, err := smartbalance.IMB(smartbalance.Medium, smartbalance.Medium, half, seed)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.SpawnAll(busy); err != nil {
			log.Fatal(err)
		}
		if err := sys.SpawnAll(inter); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if err := sys.Run(span); err != nil {
			log.Fatal(err)
		}
		hostTime := time.Since(start)
		st := sys.Stats()
		oh := ctrl.Overhead()
		fmt.Printf("%6d %8d %14.4g %12.3f %14.4g %16v\n",
			n, 2*n, st.IPS(), st.PowerW(), st.EnergyEfficiency(), oh.PerEpoch().Round(time.Microsecond))
		_ = hostTime
	}
	fmt.Println("\npaper: overhead is <1% of the 60ms epoch up to 8 cores and is bounded at scale by capping SA iterations (Fig. 7/8)")
}
