module smartbalance

go 1.22
