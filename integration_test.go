package smartbalance

// Cross-policy integration tests: every balancer on identical
// workloads, asserting the orderings the paper's evaluation implies.

import (
	"testing"
	"time"
)

// runPolicy executes the named mix under one balancer and returns the
// stats.
func runPolicy(t *testing.T, plat *Platform, bal Balancer, mix string, threads int, span time.Duration) *RunStats {
	t.Helper()
	sys, err := NewSystem(plat, bal)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := Mix(mix, threads, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SpawnAll(specs); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(span); err != nil {
		t.Fatal(err)
	}
	if err := sys.Kernel().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return sys.Stats()
}

func TestPolicyOrderingOnQuadHMP(t *testing.T) {
	const span = 1200 * time.Millisecond
	plat := func() *Platform { return QuadHMP() }

	smart, err := TrainSmartBalance(Table2Types(), 21)
	if err != nil {
		t.Fatal(err)
	}
	smartEE := runPolicy(t, plat(), smart, "Mix5", 2, span).EnergyEfficiency()
	vanillaEE := runPolicy(t, plat(), NewVanillaBalancer(), "Mix5", 2, span).EnergyEfficiency()
	pinnedEE := runPolicy(t, plat(), NewPinnedBalancer(), "Mix5", 2, span).EnergyEfficiency()

	// The paper's core ordering: SmartBalance > vanilla. Pinned (no
	// balancing at all) must not beat SmartBalance either.
	if smartEE <= vanillaEE {
		t.Fatalf("ordering violated: smart %.4g <= vanilla %.4g", smartEE, vanillaEE)
	}
	if smartEE <= pinnedEE {
		t.Fatalf("ordering violated: smart %.4g <= pinned %.4g", smartEE, pinnedEE)
	}
}

func TestPolicyOrderingOnBigLittle(t *testing.T) {
	const span = 1200 * time.Millisecond
	smart, err := TrainSmartBalance(BigLittleTypes(), 21)
	if err != nil {
		t.Fatal(err)
	}
	smartEE := runPolicy(t, OctaBigLittle(), smart, "Mix6", 2, span).EnergyEfficiency()

	gts, err := NewGTSBalancer(OctaBigLittle())
	if err != nil {
		t.Fatal(err)
	}
	gtsEE := runPolicy(t, OctaBigLittle(), gts, "Mix6", 2, span).EnergyEfficiency()

	iks, err := NewIKSBalancer(OctaBigLittle())
	if err != nil {
		t.Fatal(err)
	}
	iksEE := runPolicy(t, OctaBigLittle(), iks, "Mix6", 2, span).EnergyEfficiency()

	// Paper orderings: SmartBalance > GTS, and GTS >= IKS (GTS is the
	// finer-grained refinement of IKS).
	if smartEE <= gtsEE {
		t.Fatalf("smart %.4g <= GTS %.4g", smartEE, gtsEE)
	}
	if gtsEE < iksEE*0.95 {
		t.Fatalf("GTS %.4g materially worse than IKS %.4g", gtsEE, iksEE)
	}
}

func TestDVFSPlatformEndToEnd(t *testing.T) {
	points := []OperatingPoint{
		{FreqMHz: 1500, VoltageV: 0.80},
		{FreqMHz: 750, VoltageV: 0.65},
	}
	plat, err := DVFSPlatform(Table2Types()[1], points, 2)
	if err != nil {
		t.Fatal(err)
	}
	smart, err := TrainSmartBalance(plat.Types, 5)
	if err != nil {
		t.Fatal(err)
	}
	st := runPolicy(t, plat, smart, "Mix1", 2, 800*time.Millisecond)
	if st.TotalInstructions() == 0 {
		t.Fatal("no work on DVFS platform")
	}
	if st.EnergyEfficiency() <= 0 {
		t.Fatal("no efficiency on DVFS platform")
	}
}

func TestFullStackDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		smart, err := TrainSmartBalance(Table2Types(), 9)
		if err != nil {
			t.Fatal(err)
		}
		st := runPolicy(t, QuadHMP(), smart, "Mix4", 2, 700*time.Millisecond)
		return st.TotalInstructions(), st.TotalEnergyJ()
	}
	i1, e1 := run()
	i2, e2 := run()
	if i1 != i2 || e1 != e2 {
		t.Fatalf("full stack not deterministic: (%d, %g) vs (%d, %g)", i1, e1, i2, e2)
	}
}

func TestThroughputScalesWithThreads(t *testing.T) {
	// More worker threads must retire more total instructions under any
	// policy on the quad HMP (until saturation).
	ee := func(threads int) uint64 {
		return runPolicy(t, QuadHMP(), NewVanillaBalancer(), "Mix1", threads, 600*time.Millisecond).TotalInstructions()
	}
	one := ee(1)
	four := ee(4)
	if four <= one {
		t.Fatalf("throughput did not scale: %d threads*4 -> %d vs %d", 4, four, one)
	}
}

func TestAffinityThroughFacade(t *testing.T) {
	// A thread pinned to the Huge core must stay there even though the
	// SmartBalance optimiser would prefer to move it to an efficient
	// core; unpinned threads remain free.
	plat := QuadHMP()
	smart, err := TrainSmartBalance(Table2Types(), 31)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(plat, smart)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := Benchmark("canneal", 3, 31)
	if err != nil {
		t.Fatal(err)
	}
	var ids []ThreadID
	for i := range specs {
		id, err := sys.Spawn(&specs[i])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := sys.SetAffinity(ids[0], []CoreID{0}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(900 * 1e6); err != nil {
		t.Fatal(err)
	}
	task := sys.Kernel().Task(ids[0])
	if task.Core() != 0 {
		t.Fatalf("pinned thread ended on core %d", task.Core())
	}
	if task.Migrations() != 0 {
		t.Fatalf("pinned thread migrated %d times", task.Migrations())
	}
	// The Huge core must actually have executed the pinned thread.
	if sys.Stats().Cores[0].Instr == 0 {
		t.Fatal("pinned core idle")
	}
	if err := sys.Kernel().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Clearing the mask frees the optimiser to move it away again.
	if err := sys.ClearAffinity(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(600 * 1e6); err != nil {
		t.Fatal(err)
	}
	if sys.Kernel().Task(ids[0]).Core() == 0 {
		t.Fatal("optimiser left the canneal thread on the Huge core after unpinning")
	}
}

func TestSmartBeatsRandomChaos(t *testing.T) {
	// Metamorphic sanity: a deliberate policy must beat random epoch
	// reshuffling on energy efficiency.
	smart, err := TrainSmartBalance(Table2Types(), 77)
	if err != nil {
		t.Fatal(err)
	}
	smartEE := runPolicy(t, QuadHMP(), smart, "Mix1", 2, time.Second).EnergyEfficiency()
	// balancer.Random is internal; approximate chaos with a fresh GTS on
	// the wrong platform? No — use the pinned baseline plus vanilla as
	// the two alternative policies and require smart to beat both.
	vanillaEE := runPolicy(t, QuadHMP(), NewVanillaBalancer(), "Mix1", 2, time.Second).EnergyEfficiency()
	pinnedEE := runPolicy(t, QuadHMP(), NewPinnedBalancer(), "Mix1", 2, time.Second).EnergyEfficiency()
	if smartEE <= vanillaEE || smartEE <= pinnedEE {
		t.Fatalf("smart %.4g not above vanilla %.4g and pinned %.4g", smartEE, vanillaEE, pinnedEE)
	}
}

func TestPerBenchmarkViewThroughFacade(t *testing.T) {
	sys, err := NewSystem(QuadHMP(), NewVanillaBalancer())
	if err != nil {
		t.Fatal(err)
	}
	specs, _ := Mix("Mix6", 2, 5)
	_ = sys.SpawnAll(specs)
	if err := sys.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	groups := sys.Stats().ByBenchmark()
	if len(groups) != 3 {
		t.Fatalf("Mix6 should aggregate into 3 benchmarks, got %d", len(groups))
	}
}
