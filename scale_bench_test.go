package smartbalance

// Kernel-scale benchmarks: how many simulated threads the discrete-event
// kernel sustains per wall-clock second on production-sized machines
// (256 and 1024 cores, 10k+ threads) — the quantity ROADMAP item 2's
// calendar-queue + SoA-bank refactor targets. The balancer is a no-op so
// the numbers isolate the kernel substrate (event queue, CFS mechanics,
// counter bank) from any balancing policy.

import (
	"runtime"
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/workload"
)

// idleBalancer leaves every thread where fork placement put it.
type idleBalancer struct{}

func (idleBalancer) Name() string { return "idle" }

func (idleBalancer) Rebalance(*kernel.Kernel, kernel.Time, []hpc.ThreadSample, []hpc.CoreEpochSample) {
}

// scaleEpochs is the simulated window of one benchmark op, in epochs.
const scaleEpochs = 4

// scaleKernel builds a cores-wide ScalingHMP machine loaded with
// threads Mix1 workers under a no-op balancer.
func scaleKernel(tb testing.TB, cores, threads int) *kernel.Kernel {
	return scaleKernelQueue(tb, cores, threads, kernel.EventQueueCalendar)
}

func scaleKernelQueue(tb testing.TB, cores, threads int, q kernel.EventQueueKind) *kernel.Kernel {
	tb.Helper()
	plat, err := arch.ScalingHMP(cores)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := machine.New(plat)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := kernel.DefaultConfig()
	cfg.EventQueue = q
	k, err := kernel.New(m, idleBalancer{}, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	specs, err := workload.Mix("Mix1", threads/2, 1)
	if err != nil {
		tb.Fatal(err)
	}
	for i := range specs {
		if _, err := k.Spawn(&specs[i]); err != nil {
			tb.Fatal(err)
		}
	}
	return k
}

// benchScale times scaleEpochs of steady-state simulation and reports
// simulated-threads-per-wall-second: thread-seconds of simulated
// execution delivered per second of wall time. Two warmup epochs run
// under the stopped timer so the op measures the kernel's steady state
// — double-buffered structures touch both halves before timing starts —
// and a GC fence keeps setup's mark work out of the timed region.
func benchScale(b *testing.B, cores, threads int) {
	benchScaleQueue(b, cores, threads, kernel.EventQueueCalendar)
}

func benchScaleQueue(b *testing.B, cores, threads int, q kernel.EventQueueKind) {
	if testing.Short() && cores > 256 {
		b.Skip("short mode: 1024-core points take minutes per op")
	}
	epochNs := kernel.DefaultConfig().EpochNs
	warmNs := 2 * epochNs
	simNs := scaleEpochs * epochNs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k := scaleKernelQueue(b, cores, threads, q)
		if err := k.Run(warmNs); err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		b.StartTimer()
		if err := k.Run(warmNs + simNs); err != nil {
			b.Fatal(err)
		}
	}
	simSec := float64(simNs) * 1e-9
	b.ReportMetric(float64(b.N)*float64(threads)*simSec/b.Elapsed().Seconds(), "simthreads/s")
}

// TestScaleEpochAllocsSteady pins the kernel substrate's steady-state
// allocation behaviour at scale: after warm epochs bring the slot
// store, snapshot arenas, runqueues, spare rings, and calendar buckets
// to their high-water marks, a full simulated epoch — thousands of
// slices, counter records, and event-queue operations — stays within a
// small amortized-growth budget. The residual is calendar bucket
// growth: every resize re-derives the lane width from the live
// population, so an epoch's wakeup burst occasionally lands in a
// not-yet-warmed bucket (tens of events per epoch at this scale,
// tapering as capacities saturate). The pre-refactor path allocated per RecordSlice
// and per Snapshot through the map-based bank — thousands per epoch
// with 2560 threads.
func TestScaleEpochAllocsSteady(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	epochNs := kernel.DefaultConfig().EpochNs
	k := scaleKernel(t, 256, 2560)
	// Eight warm epochs: the spare-ring ladder and every bucket, runqueue,
	// and arena capacity must reach high water before the pin is fair.
	horizon := 8 * epochNs
	if err := k.Run(horizon); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		horizon += epochNs
		if err := k.Run(horizon); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 192
	if allocs > budget {
		t.Fatalf("steady-state scale epoch allocates %.1f times, want <= %d", allocs, budget)
	}
}

func BenchmarkKernelScale(b *testing.B) {
	b.Run("c256_t2560", func(b *testing.B) { benchScale(b, 256, 2560) })
	b.Run("c1024_t10240", func(b *testing.B) { benchScale(b, 1024, 10240) })
	b.Run("c1024_t16384", func(b *testing.B) { benchScale(b, 1024, 16384) })
	b.Run("c1024_t32768", func(b *testing.B) { benchScale(b, 1024, 32768) })
	b.Run("c1024_t49152", func(b *testing.B) { benchScale(b, 1024, 49152) })
	b.Run("c1024_t65536", func(b *testing.B) { benchScale(b, 1024, 65536) })
}

// BenchmarkKernelScaleHeap runs two scale points with the retained
// binary-heap event queue (Config.EventQueue = EventQueueHeap) for a
// same-binary apples-to-apples view of the calendar queue's
// contribution. The full pre-refactor baseline (heap + map-based
// counter bank + linear runqueue scans) is frozen in BENCH_core.json's
// scale.baseline section.
func BenchmarkKernelScaleHeap(b *testing.B) {
	b.Run("c256_t2560", func(b *testing.B) { benchScaleQueue(b, 256, 2560, kernel.EventQueueHeap) })
	b.Run("c1024_t16384", func(b *testing.B) { benchScaleQueue(b, 1024, 16384, kernel.EventQueueHeap) })
}
